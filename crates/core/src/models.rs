//! Trainable models: encoder + decoder with full mini-batch train/eval steps.

use crate::checkpoint::{Persist, StateDict};
use crate::config::{EncoderKind, ModelConfig};
use crate::source::RepresentationSource;
use marius_gnn::layers::{Aggregator, GatLayer, GcnLayer, GraphSageLayer};
use marius_gnn::loss::{ranking_softmax_loss, softmax_cross_entropy};
use marius_gnn::{ClassifierHead, DistMult, Encoder, Optimizer, Param};
use marius_graph::{Edge, InMemorySubgraph, NodeId};
use marius_sampling::{MultiHopSampler, NegativeSampler, RankingProtocol};
use marius_tensor::segment::index_add;
use marius_tensor::Tensor;
use rand::Rng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Statistics for one mini-batch step, aggregated into epoch reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Mini-batch loss.
    pub loss: f64,
    /// Number of training examples processed.
    pub examples: usize,
    /// Wall-clock time spent in CPU neighbourhood sampling.
    pub sample_time: Duration,
    /// Wall-clock time spent in forward/backward compute and updates.
    pub compute_time: Duration,
    /// Unique nodes in the mini-batch sample.
    pub nodes_sampled: usize,
    /// Sampled neighbour edges in the mini batch.
    pub edges_sampled: usize,
}

/// Builds the encoder stack described by a [`ModelConfig`].
pub fn build_encoder<R: Rng + ?Sized>(config: &ModelConfig, rng: &mut R) -> Encoder {
    let mut encoder = Encoder::new();
    for layer in 0..config.num_layers {
        let in_dim = if layer == 0 {
            config.input_dim
        } else {
            config.hidden_dim
        };
        let out_dim = if layer + 1 == config.num_layers {
            config.output_dim
        } else {
            config.hidden_dim
        };
        let is_last = layer + 1 == config.num_layers;
        let boxed: Box<dyn marius_gnn::GnnLayer> = match config.encoder {
            EncoderKind::GraphSage | EncoderKind::None => Box::new(GraphSageLayer::new(
                in_dim,
                out_dim,
                Aggregator::Mean,
                !is_last,
                rng,
            )),
            EncoderKind::Gat => Box::new(GatLayer::new(in_dim, out_dim, !is_last, rng)),
            EncoderKind::Gcn => Box::new(GcnLayer::new(in_dim, out_dim, !is_last, rng)),
        };
        encoder = encoder.push_layer(boxed);
    }
    encoder
}

// ---------------------------------------------------------------------------
// Durable model state: the Persist impls behind Task::save_state/load_state.
//
// Blob names (`model.encoder.l{i}.p{j}`, `model.decoder.relations`,
// `model.head.p{j}`) index parameters positionally — layer order and the
// per-layer params() order are part of the checkpoint contract. Each
// parameter persists both its value and its Adagrad accumulator; gradients
// are transient (always zero at an epoch boundary) and are cleared on load.
// ---------------------------------------------------------------------------

fn save_param(dict: &mut StateDict, prefix: &str, p: &Param) {
    let (r, c) = p.value.shape();
    dict.push_f32(format!("{prefix}.value"), r, c, p.value.data());
    let (sr, sc) = p.adagrad_state.shape();
    dict.push_f32(format!("{prefix}.adagrad"), sr, sc, p.adagrad_state.data());
}

fn load_param(dict: &StateDict, prefix: &str, p: &mut Param) -> marius_storage::Result<()> {
    let (r, c) = p.value.shape();
    let value = dict.require_f32(&format!("{prefix}.value"), r, c)?;
    p.value.data_mut().copy_from_slice(&value);
    let (sr, sc) = p.adagrad_state.shape();
    let state = dict.require_f32(&format!("{prefix}.adagrad"), sr, sc)?;
    p.adagrad_state.data_mut().copy_from_slice(&state);
    p.zero_grad();
    Ok(())
}

fn save_encoder(dict: &mut StateDict, encoder: &Encoder) {
    for (li, layer) in encoder.layers().iter().enumerate() {
        for (pi, p) in layer.params().iter().enumerate() {
            save_param(dict, &format!("model.encoder.l{li}.p{pi}"), p);
        }
    }
}

fn load_encoder(dict: &StateDict, encoder: &mut Encoder) -> marius_storage::Result<()> {
    for (li, layer) in encoder.layers_mut().iter_mut().enumerate() {
        for (pi, p) in layer.params_mut().into_iter().enumerate() {
            load_param(dict, &format!("model.encoder.l{li}.p{pi}"), p)?;
        }
    }
    Ok(())
}

/// The CPU-side half of a link-prediction training step: negative sampling,
/// target interning, and DENSE multi-hop sampling.
///
/// The builder is `Clone + Send + Sync` and borrows nothing from the model, so
/// the pipelined runtime can run it on batch-construction worker threads while
/// the compute consumer owns the model (`marius-pipeline` stage 2 vs stage 3).
/// RNG draws happen in the same order as the original fused `train_batch`
/// (negatives first, then the neighbourhood sample), which is what makes the
/// pipelined and sequential paths bit-identical under a shared seed.
#[derive(Debug, Clone)]
pub struct LinkBatchBuilder {
    sampler: MultiHopSampler,
    negative_sampler: NegativeSampler,
}

/// A fully constructed link-prediction batch, ready for the compute stage.
pub struct PreparedLinkBatch {
    dense: marius_sampling::Dense,
    node_ids: Vec<NodeId>,
    src_idx: Vec<usize>,
    dst_idx: Vec<usize>,
    neg_idx: Vec<usize>,
    rels: Vec<u32>,
    examples: usize,
    sample_time: Duration,
    stats: marius_sampling::SampleStats,
}

impl LinkBatchBuilder {
    /// Builds one training batch from a slice of positive edges: samples the
    /// shared negative pool, interns the unique endpoint/negative nodes, and
    /// runs DENSE multi-hop sampling over `subgraph`.
    pub fn prepare<R: Rng + ?Sized>(
        &self,
        subgraph: &InMemorySubgraph,
        edges: &[Edge],
        negative_candidates: &[NodeId],
        rng: &mut R,
    ) -> PreparedLinkBatch {
        // Shared negative pool plus the unique batch endpoints form the targets.
        let negatives = if self.negative_sampler.num_negatives() > 0 {
            self.negative_sampler.sample_pool(negative_candidates, rng)
        } else {
            Vec::new()
        };
        let mut position: HashMap<NodeId, usize> = HashMap::new();
        let mut targets: Vec<NodeId> = Vec::new();
        let intern =
            |n: NodeId, targets: &mut Vec<NodeId>, position: &mut HashMap<NodeId, usize>| {
                *position.entry(n).or_insert_with(|| {
                    targets.push(n);
                    targets.len() - 1
                })
            };
        let mut src_idx = Vec::with_capacity(edges.len());
        let mut dst_idx = Vec::with_capacity(edges.len());
        let rels: Vec<u32> = edges.iter().map(|e| e.rel).collect();
        for e in edges {
            src_idx.push(intern(e.src, &mut targets, &mut position));
            dst_idx.push(intern(e.dst, &mut targets, &mut position));
        }
        let neg_idx: Vec<usize> = negatives
            .iter()
            .map(|&n| intern(n, &mut targets, &mut position))
            .collect();

        let sample_start = Instant::now();
        let dense = self.sampler.sample(subgraph, &targets, rng);
        let sample_time = sample_start.elapsed();
        let stats = dense.stats();
        let node_ids = dense.node_ids().to_vec();
        PreparedLinkBatch {
            dense,
            node_ids,
            src_idx,
            dst_idx,
            neg_idx,
            rels,
            examples: edges.len(),
            sample_time,
            stats,
        }
    }
}

/// A link-prediction model: GNN encoder (possibly empty) plus DistMult decoder.
pub struct LinkPredictionModel {
    encoder: Encoder,
    decoder: DistMult,
    builder: LinkBatchBuilder,
    optimizer: Optimizer,
    output_dim: usize,
}

impl LinkPredictionModel {
    /// Builds the model for a graph with `num_relations` edge types.
    pub fn new<R: Rng + ?Sized>(config: &ModelConfig, num_relations: u32, rng: &mut R) -> Self {
        let encoder = build_encoder(config, rng);
        let decoder = DistMult::new(num_relations as usize, config.output_dim, rng);
        let sampler = MultiHopSampler::new(config.fanouts.clone(), config.direction);
        LinkPredictionModel {
            encoder,
            decoder,
            builder: LinkBatchBuilder {
                sampler,
                negative_sampler: NegativeSampler::new(0),
            },
            optimizer: Optimizer::adagrad(config.learning_rate),
            output_dim: config.output_dim,
        }
    }

    /// Sets the number of shared negatives per mini batch.
    pub fn with_negatives(mut self, num_negatives: usize) -> Self {
        self.builder.negative_sampler = NegativeSampler::new(num_negatives);
        self
    }

    /// Number of encoder layers.
    pub fn num_layers(&self) -> usize {
        self.encoder.num_layers()
    }

    /// A clone of the model's batch builder for use on sampling worker
    /// threads.
    pub fn batch_builder(&self) -> LinkBatchBuilder {
        self.builder.clone()
    }

    /// Encodes a set of target nodes over the in-memory subgraph, returning their
    /// final representations, the list of all sampled node ids (for write-back),
    /// the encoder activations and sampling statistics.
    fn encode<R: Rng + ?Sized>(
        &self,
        source: &dyn RepresentationSource,
        subgraph: &InMemorySubgraph,
        targets: &[NodeId],
        rng: &mut R,
    ) -> (
        marius_gnn::encoder::EncoderActivations,
        Vec<NodeId>,
        marius_sampling::SampleStats,
        Duration,
    ) {
        let sample_start = Instant::now();
        let mut dense = self.builder.sampler.sample(subgraph, targets, rng);
        let sample_time = sample_start.elapsed();
        let stats = dense.stats();
        let node_ids = dense.node_ids().to_vec();
        let h0 = source.gather(&node_ids);
        let acts = self.encoder.forward(&mut dense, h0);
        (acts, node_ids, stats, sample_time)
    }

    /// Runs one training step over a batch of positive edges (the fused
    /// prepare-then-compute path used by in-memory and sequential training).
    pub fn train_batch<R: Rng + ?Sized>(
        &mut self,
        source: &mut dyn RepresentationSource,
        subgraph: &InMemorySubgraph,
        edges: &[Edge],
        negative_candidates: &[NodeId],
        rng: &mut R,
    ) -> BatchStats {
        if edges.is_empty() {
            return BatchStats::default();
        }
        let prepared = self
            .builder
            .prepare(subgraph, edges, negative_candidates, rng);
        self.train_prepared(source, prepared)
    }

    /// Runs the compute half of a training step over a batch constructed by
    /// [`LinkBatchBuilder::prepare`] (possibly on another thread): embedding
    /// gather, encoder/decoder forward and backward, parameter updates, and
    /// the sparse write-back of base-embedding gradients.
    pub fn train_prepared(
        &mut self,
        source: &mut dyn RepresentationSource,
        prepared: PreparedLinkBatch,
    ) -> BatchStats {
        if prepared.examples == 0 {
            return BatchStats::default();
        }
        let PreparedLinkBatch {
            mut dense,
            node_ids,
            src_idx,
            dst_idx,
            neg_idx,
            rels,
            examples,
            sample_time,
            stats,
        } = prepared;
        let compute_start = Instant::now();
        let h0 = source.gather(&node_ids);
        let acts = self.encoder.forward(&mut dense, h0);
        let out = &acts.output;

        // Gather per-role representations from the encoder output.
        let src_repr = marius_tensor::segment::index_select(out, &src_idx).expect("src rows");
        let dst_repr = marius_tensor::segment::index_select(out, &dst_idx).expect("dst rows");
        let neg_repr = marius_tensor::segment::index_select(out, &neg_idx).expect("neg rows");

        let pos_scores = self.decoder.score_positive(&src_repr, &rels, &dst_repr);
        let neg_scores = self.decoder.score_negatives(&src_repr, &rels, &neg_repr);
        let loss = ranking_softmax_loss(&pos_scores, &neg_scores);

        // Decoder backward -> per-role gradients.
        let (g_src_pos, g_dst) =
            self.decoder
                .backward_positive(&src_repr, &rels, &dst_repr, &loss.grad_positive);
        let (g_src_neg, g_neg) =
            self.decoder
                .backward_negatives(&src_repr, &rels, &neg_repr, &loss.grad_negative);
        let g_src = g_src_pos.add(&g_src_neg).expect("src grad shapes");

        // Scatter the per-role gradients back onto the encoder output rows.
        let mut grad_targets = Tensor::zeros(out.rows(), self.output_dim);
        grad_targets
            .add_assign(&index_add(out.rows(), self.output_dim, &src_idx, &g_src).expect("scatter"))
            .expect("shape");
        grad_targets
            .add_assign(&index_add(out.rows(), self.output_dim, &dst_idx, &g_dst).expect("scatter"))
            .expect("shape");
        grad_targets
            .add_assign(&index_add(out.rows(), self.output_dim, &neg_idx, &g_neg).expect("scatter"))
            .expect("shape");

        // Encoder backward and parameter / embedding updates.
        let grad_h0 = self.encoder.backward(&acts, &grad_targets);
        self.encoder.step(&self.optimizer);
        self.optimizer.step(self.decoder.relation_param_mut());
        if source.learnable() {
            source.apply_update(&node_ids, &grad_h0);
        }
        let compute_time = compute_start.elapsed();

        BatchStats {
            loss: loss.loss,
            examples,
            sample_time,
            compute_time,
            nodes_sampled: stats.nodes_sampled,
            edges_sampled: stats.edges_sampled,
        }
    }

    /// Evaluates MRR over `edges`, ranking each positive destination against
    /// `num_negatives` shared corruptions drawn from `candidates`.
    pub fn evaluate_mrr<R: Rng + ?Sized>(
        &self,
        source: &dyn RepresentationSource,
        subgraph: &InMemorySubgraph,
        edges: &[Edge],
        candidates: &[NodeId],
        num_negatives: usize,
        rng: &mut R,
    ) -> f64 {
        if edges.is_empty() {
            return 0.0;
        }
        let neg_sampler = NegativeSampler::new(num_negatives);
        let mut positives = Vec::with_capacity(edges.len());
        let mut negative_scores = Vec::with_capacity(edges.len());
        // Evaluate in manageable chunks so the target set stays small.
        for chunk in edges.chunks(512) {
            let negatives = neg_sampler.sample_pool(candidates, rng);
            let mut position: HashMap<NodeId, usize> = HashMap::new();
            let mut targets: Vec<NodeId> = Vec::new();
            let intern =
                |n: NodeId, targets: &mut Vec<NodeId>, position: &mut HashMap<NodeId, usize>| {
                    *position.entry(n).or_insert_with(|| {
                        targets.push(n);
                        targets.len() - 1
                    })
                };
            let mut src_idx = Vec::new();
            let mut dst_idx = Vec::new();
            let rels: Vec<u32> = chunk.iter().map(|e| e.rel).collect();
            for e in chunk {
                src_idx.push(intern(e.src, &mut targets, &mut position));
                dst_idx.push(intern(e.dst, &mut targets, &mut position));
            }
            let neg_idx: Vec<usize> = negatives
                .iter()
                .map(|&n| intern(n, &mut targets, &mut position))
                .collect();
            let (acts, _, _, _) = self.encode(source, subgraph, &targets, rng);
            let out = &acts.output;
            let src_repr = marius_tensor::segment::index_select(out, &src_idx).expect("src rows");
            let dst_repr = marius_tensor::segment::index_select(out, &dst_idx).expect("dst rows");
            let neg_repr = marius_tensor::segment::index_select(out, &neg_idx).expect("neg rows");
            let pos = self.decoder.score_positive(&src_repr, &rels, &dst_repr);
            let neg = self.decoder.score_negatives(&src_repr, &rels, &neg_repr);
            for (i, _) in chunk.iter().enumerate() {
                positives.push(pos.get(i, 0));
                negative_scores.push(neg.row(i).to_vec());
            }
        }
        RankingProtocol::mrr(&positives, &negative_scores)
    }
}

impl Persist for LinkPredictionModel {
    fn save_state(&self, dict: &mut StateDict) {
        save_encoder(dict, &self.encoder);
        save_param(
            dict,
            "model.decoder.relations",
            self.decoder.relation_param(),
        );
    }

    fn load_state(&mut self, dict: &StateDict) -> marius_storage::Result<()> {
        load_encoder(dict, &mut self.encoder)?;
        load_param(
            dict,
            "model.decoder.relations",
            self.decoder.relation_param_mut(),
        )
    }
}

/// The CPU-side half of a node-classification training step: DENSE multi-hop
/// sampling plus label alignment. `Clone + Send + Sync` for the same reason as
/// [`LinkBatchBuilder`].
#[derive(Debug, Clone)]
pub struct NodeBatchBuilder {
    sampler: MultiHopSampler,
}

/// A fully constructed node-classification batch, ready for compute.
pub struct PreparedNodeBatch {
    dense: marius_sampling::Dense,
    node_ids: Vec<NodeId>,
    batch_labels: Vec<u32>,
    examples: usize,
    sample_time: Duration,
    stats: marius_sampling::SampleStats,
}

impl NodeBatchBuilder {
    /// Builds one training batch for `nodes` (with per-node `labels`):
    /// samples the multi-hop neighbourhood and aligns labels with DENSE's
    /// deduplicated target order.
    pub fn prepare<R: Rng + ?Sized>(
        &self,
        subgraph: &InMemorySubgraph,
        nodes: &[NodeId],
        labels: &[u32],
        rng: &mut R,
    ) -> PreparedNodeBatch {
        let sample_start = Instant::now();
        let dense = self.sampler.sample(subgraph, nodes, rng);
        let sample_time = sample_start.elapsed();
        let stats = dense.stats();
        let node_ids = dense.node_ids().to_vec();
        // Dense de-duplicates targets; align labels with the retained order.
        let target_order = dense.target_nodes().to_vec();
        let label_of: HashMap<NodeId, u32> =
            nodes.iter().copied().zip(labels.iter().copied()).collect();
        let batch_labels: Vec<u32> = target_order.iter().map(|n| label_of[n]).collect();
        PreparedNodeBatch {
            dense,
            node_ids,
            batch_labels,
            examples: target_order.len(),
            sample_time,
            stats,
        }
    }
}

/// A node-classification model: GNN encoder plus linear softmax head.
pub struct NodeClassificationModel {
    encoder: Encoder,
    head: ClassifierHead,
    builder: NodeBatchBuilder,
    optimizer: Optimizer,
}

impl NodeClassificationModel {
    /// Builds the model for `num_classes` output classes.
    pub fn new<R: Rng + ?Sized>(config: &ModelConfig, num_classes: usize, rng: &mut R) -> Self {
        let encoder = build_encoder(config, rng);
        let head = ClassifierHead::new(config.output_dim, num_classes, rng);
        let sampler = MultiHopSampler::new(config.fanouts.clone(), config.direction);
        NodeClassificationModel {
            encoder,
            head,
            builder: NodeBatchBuilder { sampler },
            optimizer: Optimizer::adagrad(config.learning_rate),
        }
    }

    /// Number of encoder layers.
    pub fn num_layers(&self) -> usize {
        self.encoder.num_layers()
    }

    /// A clone of the model's batch builder for use on sampling worker
    /// threads.
    pub fn batch_builder(&self) -> NodeBatchBuilder {
        self.builder.clone()
    }

    /// Runs one training step over a batch of labeled nodes (the fused
    /// prepare-then-compute path used by in-memory and sequential training).
    pub fn train_batch<R: Rng + ?Sized>(
        &mut self,
        source: &mut dyn RepresentationSource,
        subgraph: &InMemorySubgraph,
        nodes: &[NodeId],
        labels: &[u32],
        rng: &mut R,
    ) -> BatchStats {
        if nodes.is_empty() {
            return BatchStats::default();
        }
        let prepared = self.builder.prepare(subgraph, nodes, labels, rng);
        self.train_prepared(source, prepared)
    }

    /// Runs the compute half of a training step over a batch constructed by
    /// [`NodeBatchBuilder::prepare`] (possibly on another thread).
    pub fn train_prepared(
        &mut self,
        source: &mut dyn RepresentationSource,
        prepared: PreparedNodeBatch,
    ) -> BatchStats {
        if prepared.examples == 0 {
            return BatchStats::default();
        }
        let PreparedNodeBatch {
            mut dense,
            node_ids,
            batch_labels,
            examples,
            sample_time,
            stats,
        } = prepared;
        let compute_start = Instant::now();
        let h0 = source.gather(&node_ids);
        let acts = self.encoder.forward(&mut dense, h0);
        let logits = self.head.forward(&acts.output);
        let loss = softmax_cross_entropy(&logits, &batch_labels);
        let grad_out = self.head.backward(&acts.output, &loss.grad_logits);
        let grad_h0 = self.encoder.backward(&acts, &grad_out);
        self.encoder.step(&self.optimizer);
        for p in self.head.params_mut() {
            self.optimizer.step(p);
        }
        if source.learnable() {
            source.apply_update(&node_ids, &grad_h0);
        }
        let compute_time = compute_start.elapsed();

        BatchStats {
            loss: loss.loss,
            examples,
            sample_time,
            compute_time,
            nodes_sampled: stats.nodes_sampled,
            edges_sampled: stats.edges_sampled,
        }
    }

    /// Classification accuracy over `nodes`.
    pub fn evaluate_accuracy<R: Rng + ?Sized>(
        &self,
        source: &dyn RepresentationSource,
        subgraph: &InMemorySubgraph,
        nodes: &[NodeId],
        labels: &[u32],
        rng: &mut R,
    ) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        let label_of: HashMap<NodeId, u32> =
            nodes.iter().copied().zip(labels.iter().copied()).collect();
        let mut correct = 0usize;
        let mut total = 0usize;
        for chunk in nodes.chunks(1024) {
            let mut dense = self.builder.sampler.sample(subgraph, chunk, rng);
            let target_order = dense.target_nodes().to_vec();
            let node_ids = dense.node_ids().to_vec();
            let h0 = source.gather(&node_ids);
            let acts = self.encoder.forward(&mut dense, h0);
            let logits = self.head.forward(&acts.output);
            let preds = logits.argmax_rows();
            for (i, n) in target_order.iter().enumerate() {
                if preds[i] as u32 == label_of[n] {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total.max(1) as f64
    }
}

impl Persist for NodeClassificationModel {
    fn save_state(&self, dict: &mut StateDict) {
        save_encoder(dict, &self.encoder);
        for (pi, p) in self.head.params().iter().enumerate() {
            save_param(dict, &format!("model.head.p{pi}"), p);
        }
    }

    fn load_state(&mut self, dict: &StateDict) -> marius_storage::Result<()> {
        load_encoder(dict, &mut self.encoder)?;
        for (pi, p) in self.head.params_mut().into_iter().enumerate() {
            load_param(dict, &format!("model.head.p{pi}"), p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::{DatasetSpec, ScaledDataset};
    use marius_sampling::SamplingDirection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn build_encoder_produces_requested_depth_and_dims() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = ModelConfig {
            encoder: EncoderKind::GraphSage,
            num_layers: 3,
            hidden_dim: 8,
            output_dim: 4,
            input_dim: 6,
            fanouts: vec![3, 3, 3],
            direction: SamplingDirection::Both,
            learning_rate: 0.01,
            embedding_learning_rate: 0.1,
        };
        let enc = build_encoder(&config, &mut rng);
        assert_eq!(enc.num_layers(), 3);
        assert_eq!(enc.output_dim(), Some(4));
        assert_eq!(enc.layers()[0].input_dim(), 6);
        assert_eq!(enc.layers()[1].input_dim(), 8);
    }

    #[test]
    fn build_encoder_gat_and_gcn() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut config = ModelConfig::paper_link_prediction_gat(8);
        config.fanouts = vec![3];
        let enc = build_encoder(&config, &mut rng);
        assert_eq!(enc.layers()[0].name(), "gat");
        config.encoder = EncoderKind::Gcn;
        let enc = build_encoder(&config, &mut rng);
        assert_eq!(enc.layers()[0].name(), "gcn");
        config.encoder = EncoderKind::None;
        config.num_layers = 0;
        let enc = build_encoder(&config, &mut rng);
        assert_eq!(enc.num_layers(), 0);
    }

    fn tiny_kg() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.02), 11)
    }

    #[test]
    fn link_prediction_batch_reduces_loss_over_steps() {
        let data = tiny_kg();
        let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let mut rng = StdRng::seed_from_u64(3);
        let config = ModelConfig::paper_link_prediction_graphsage(16).shrunk(5, 16);
        let mut model =
            LinkPredictionModel::new(&config, data.spec.num_relations, &mut rng).with_negatives(32);
        let table = marius_gnn::EmbeddingTable::new(data.num_nodes() as usize, 16, 0.1, &mut rng)
            .with_learning_rate(0.1);
        let mut source = crate::source::TableSource::new(table);
        let candidates: Vec<NodeId> = (0..data.num_nodes()).collect();

        // Train repeatedly on one fixed batch: with correct gradients the loss on
        // that batch must decrease substantially.
        let batch = &data.train_edges[..64.min(data.train_edges.len())];
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for round in 0..60 {
            let stats = model.train_batch(&mut source, &subgraph, batch, &candidates, &mut rng);
            assert!(stats.loss.is_finite());
            if round == 0 {
                first = stats.loss;
            }
            last = stats.loss;
        }
        assert!(
            last < first - 0.1,
            "loss should decrease on a fixed batch: first {first} vs last {last}"
        );
    }

    #[test]
    fn link_prediction_mrr_improves_with_training() {
        let data = tiny_kg();
        let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let mut rng = StdRng::seed_from_u64(4);
        let config = ModelConfig::paper_distmult(16);
        let mut model =
            LinkPredictionModel::new(&config, data.spec.num_relations, &mut rng).with_negatives(64);
        let table = marius_gnn::EmbeddingTable::new(data.num_nodes() as usize, 16, 0.1, &mut rng)
            .with_learning_rate(0.1);
        let mut source = crate::source::TableSource::new(table);
        let candidates: Vec<NodeId> = (0..data.num_nodes()).collect();

        let initial = model.evaluate_mrr(
            &source,
            &subgraph,
            &data.test_edges,
            &candidates,
            100,
            &mut rng,
        );
        for _ in 0..3 {
            for batch in data.train_edges.chunks(128) {
                model.train_batch(&mut source, &subgraph, batch, &candidates, &mut rng);
            }
        }
        let trained = model.evaluate_mrr(
            &source,
            &subgraph,
            &data.test_edges,
            &candidates,
            100,
            &mut rng,
        );
        assert!(
            trained > initial + 0.05,
            "MRR should improve with training: {initial} -> {trained}"
        );
    }

    #[test]
    fn node_classification_accuracy_improves_with_training() {
        let spec = DatasetSpec::ogbn_arxiv().scaled(0.01);
        let data = ScaledDataset::generate(&spec, 5);
        let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let mut rng = StdRng::seed_from_u64(6);
        let mut config = ModelConfig::paper_node_classification(spec.feat_dim, 32);
        config.num_layers = 2;
        config.fanouts = vec![10, 10];
        let num_classes = spec.num_classes.unwrap();
        let mut model = NodeClassificationModel::new(&config, num_classes, &mut rng);
        let mut source = crate::source::FixedFeatureSource::new(data.features.clone().unwrap());
        let labels = data.labels.as_ref().unwrap();

        let test_labels: Vec<u32> = data
            .node_split
            .test
            .iter()
            .map(|&n| labels[n as usize])
            .collect();
        let initial = model.evaluate_accuracy(
            &source,
            &subgraph,
            &data.node_split.test,
            &test_labels,
            &mut rng,
        );
        for _ in 0..5 {
            for batch in data.node_split.train.chunks(128) {
                let batch_labels: Vec<u32> = batch.iter().map(|&n| labels[n as usize]).collect();
                let stats =
                    model.train_batch(&mut source, &subgraph, batch, &batch_labels, &mut rng);
                assert!(stats.loss.is_finite());
            }
        }
        let trained = model.evaluate_accuracy(
            &source,
            &subgraph,
            &data.node_split.test,
            &test_labels,
            &mut rng,
        );
        assert!(
            trained > initial,
            "accuracy should improve: {initial} -> {trained}"
        );
        assert!(trained > 1.5 / num_classes as f64);
    }

    #[test]
    fn batch_stats_track_sampling_volume() {
        let data = tiny_kg();
        let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let mut rng = StdRng::seed_from_u64(7);
        let config = ModelConfig::paper_link_prediction_graphsage(8).shrunk(5, 8);
        let mut model =
            LinkPredictionModel::new(&config, data.spec.num_relations, &mut rng).with_negatives(16);
        let table = marius_gnn::EmbeddingTable::new(data.num_nodes() as usize, 8, 0.1, &mut rng);
        let mut source = crate::source::TableSource::new(table);
        let candidates: Vec<NodeId> = (0..data.num_nodes()).collect();
        let stats = model.train_batch(
            &mut source,
            &subgraph,
            &data.train_edges[..32],
            &candidates,
            &mut rng,
        );
        assert!(stats.nodes_sampled > 0);
        assert!(stats.examples == 32);
        assert!(stats.sample_time > Duration::ZERO);
    }

    #[test]
    fn model_state_roundtrips_and_rejects_architecture_mismatch() {
        let mut rng = StdRng::seed_from_u64(21);
        let config = ModelConfig::paper_link_prediction_graphsage(8).shrunk(5, 8);
        let model = LinkPredictionModel::new(&config, 4, &mut rng).with_negatives(8);
        let mut dict = StateDict::new();
        model.save_state(&mut dict);
        // Encoder value + adagrad per param, plus the decoder's relation param.
        assert!(dict.get("model.encoder.l0.p0.value").is_some());
        assert!(dict.get("model.decoder.relations.adagrad").is_some());
        // A same-architecture twin restores to identical parameters.
        let mut twin = LinkPredictionModel::new(&config, 4, &mut rng).with_negatives(8);
        twin.load_state(&dict).unwrap();
        let mut twin_dict = StateDict::new();
        twin.save_state(&mut twin_dict);
        assert_eq!(dict, twin_dict);
        // A different architecture (wrong dims) must refuse to load.
        let other_config = ModelConfig::paper_link_prediction_graphsage(16).shrunk(5, 16);
        let mut other = LinkPredictionModel::new(&other_config, 4, &mut rng);
        assert!(other.load_state(&dict).is_err());

        // Node classification round-trips too (encoder + head).
        let mut nc_config = ModelConfig::paper_node_classification(12, 8);
        nc_config.num_layers = 1;
        nc_config.fanouts = vec![4];
        let nc = NodeClassificationModel::new(&nc_config, 5, &mut rng);
        let mut nc_dict = StateDict::new();
        nc.save_state(&mut nc_dict);
        assert!(nc_dict.get("model.head.p0.value").is_some());
        let mut nc_twin = NodeClassificationModel::new(&nc_config, 5, &mut rng);
        nc_twin.load_state(&nc_dict).unwrap();
        let mut nc_twin_dict = StateDict::new();
        nc_twin.save_state(&mut nc_twin_dict);
        assert_eq!(nc_dict, nc_twin_dict);
    }

    #[test]
    fn empty_batches_are_noops() {
        let data = tiny_kg();
        let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let mut rng = StdRng::seed_from_u64(8);
        let config = ModelConfig::paper_distmult(8);
        let mut model = LinkPredictionModel::new(&config, 4, &mut rng);
        let table = marius_gnn::EmbeddingTable::new(data.num_nodes() as usize, 8, 0.1, &mut rng);
        let mut source = crate::source::TableSource::new(table);
        let stats = model.train_batch(&mut source, &subgraph, &[], &[0, 1], &mut rng);
        assert_eq!(stats.examples, 0);
        let mrr = model.evaluate_mrr(&source, &subgraph, &[], &[0, 1], 10, &mut rng);
        assert_eq!(mrr, 0.0);
    }
}
