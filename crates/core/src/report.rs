//! Experiment reporting structures shared by examples and benchmark harnesses.
//!
//! Reports render two ways: [`ExperimentReport::to_table`] produces the
//! aligned text tables the harnesses print, and [`ExperimentReport::to_json`]
//! produces a machine-readable document (written as `BENCH_*.json` by the
//! benchmark harnesses so perf trajectories can be tracked across commits).

use marius_baselines::{AwsInstance, CostModel};
use serde::Serialize;
use std::time::Duration;

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes and control characters). Shared by [`ExperimentReport::to_json`]
/// and the benchmark harnesses' `BENCH_*.json` writer. Delegates to the
/// workspace-wide helper in [`marius_telemetry::json`], so report JSON and the
/// telemetry exporters (`metrics.json`, Chrome traces) share one encoding.
pub fn json_escape(s: &str) -> String {
    marius_telemetry::json::escape(s)
}

/// Per-epoch measurements.
#[derive(Debug, Clone, Default, Serialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f64,
    /// Task metric after the epoch: accuracy for node classification, MRR for
    /// link prediction.
    pub metric: f64,
    /// Wall-clock duration of the epoch's training phase.
    pub epoch_time: Duration,
    /// Time spent in CPU neighbourhood sampling. On pipelined runs this sums
    /// across concurrent sampling workers (CPU time, not wall time), so it
    /// can legitimately exceed `epoch_time`.
    pub sample_time: Duration,
    /// Time spent in forward/backward compute and updates.
    pub compute_time: Duration,
    /// Estimated disk IO time under the experiment's IO cost model.
    pub io_time: Duration,
    /// Pipelined runs only: time the compute consumer spent blocked waiting
    /// for upstream stages (prefetched partitions or constructed batches).
    /// Zero on the sequential path, where every wait is inline.
    pub io_wait_time: Duration,
    /// Pipelined runs only: time the prefetcher and sampling workers spent
    /// blocked on back-pressure or write-back dependencies. The write-back
    /// drain's idle wait is excluded (it spends most of the epoch waiting
    /// for work by design); back-pressure *from* the drain shows up in
    /// `io_wait_time` via the consumer's queue wait.
    pub stall_time: Duration,
    /// Pipelined runs only: time the write-back drain thread spent writing
    /// evicted dirty partitions to disk, off the compute path. Zero on the
    /// sequential path, where eviction writes are inline (and land in
    /// `epoch_time` directly).
    pub writeback_time: Duration,
    /// Pipelined runs only: summed per-stage busy time divided by epoch wall
    /// time. Values above 1.0 quantify how much work the stages overlapped;
    /// 0.0 on the sequential path.
    pub overlap: f64,
    /// Bytes read from disk during the epoch.
    pub io_bytes_read: u64,
    /// Bytes written to disk during the epoch.
    pub io_bytes_written: u64,
    /// Partition loads performed during the epoch.
    pub partition_loads: usize,
    /// Training examples processed.
    pub examples: usize,
    /// Total unique nodes sampled across mini batches.
    pub nodes_sampled: usize,
    /// Total neighbour edges sampled across mini batches.
    pub edges_sampled: usize,
    /// Transient IO failures that were absorbed by the retry layer during the
    /// epoch (each one is an extra attempt of a partition/bucket/checkpoint
    /// operation). Zero on a healthy device.
    pub io_retries: u64,
    /// Faults injected by an attached [`marius_storage::fault::FaultInjector`]
    /// during the epoch; zero when no fault plan is armed.
    pub faults_injected: u64,
    /// Number of checkpoint-resume recoveries that preceded this epoch in a
    /// `train_with_recovery` run; zero on an uninterrupted run.
    pub recoveries: usize,
    /// Disk runs only: partitions the buffer found already resident during
    /// this epoch's swaps (no disk read needed).
    pub buffer_hits: u64,
    /// Disk runs only: partitions the buffer had to load from the store
    /// during this epoch's swaps. Mirrors `partition_loads` through the
    /// buffer's own accounting.
    pub buffer_misses: u64,
    /// Disk runs only: partitions evicted from the buffer during the epoch
    /// (written back inline or detached to the write-back drain when dirty).
    pub buffer_evictions: u64,
    /// Emulated-device runs only: time IO operations spent queued behind the
    /// device's single-lane reservation before their transfer began. Zero on
    /// real (non-emulated) devices.
    pub throttle_wait_time: Duration,
    /// Streaming runs only: edges ingested into the training buckets at this
    /// epoch's boundary (applied at the write-back safe point, after the
    /// epoch's training but before its evaluation). Zero on frozen-dataset
    /// runs.
    pub edges_ingested: u64,
}

/// A complete experiment run: configuration label plus per-epoch reports.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExperimentReport {
    /// System / configuration label (e.g. "M-GNN_Mem", "M-GNN_Disk (COMET)").
    pub system: String,
    /// Dataset label.
    pub dataset: String,
    /// Per-epoch measurements, in order.
    pub epochs: Vec<EpochReport>,
}

impl ExperimentReport {
    /// Creates an empty report with labels.
    pub fn new(system: impl Into<String>, dataset: impl Into<String>) -> Self {
        ExperimentReport {
            system: system.into(),
            dataset: dataset.into(),
            epochs: Vec::new(),
        }
    }

    /// The final epoch's metric (0.0 if no epochs ran).
    pub fn final_metric(&self) -> f64 {
        self.epochs.last().map(|e| e.metric).unwrap_or(0.0)
    }

    /// The best metric across epochs.
    pub fn best_metric(&self) -> f64 {
        self.epochs.iter().map(|e| e.metric).fold(0.0, f64::max)
    }

    /// Mean epoch time.
    pub fn avg_epoch_time(&self) -> Duration {
        if self.epochs.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.epochs.iter().map(|e| e.epoch_time).sum();
        total / self.epochs.len() as u32
    }

    /// Total training time across epochs.
    pub fn total_time(&self) -> Duration {
        self.epochs.iter().map(|e| e.epoch_time).sum()
    }

    /// Dollar cost per epoch on the given instance.
    pub fn cost_per_epoch(&self, instance: AwsInstance) -> f64 {
        CostModel::cost_per_epoch(instance, self.avg_epoch_time())
    }

    /// Time (from the start of training) until the metric first reaches
    /// `threshold`, or `None` if it never does — the time-to-accuracy measure of
    /// Figure 7.
    pub fn time_to_metric(&self, threshold: f64) -> Option<Duration> {
        let mut elapsed = Duration::ZERO;
        for e in &self.epochs {
            elapsed += e.epoch_time;
            if e.metric >= threshold {
                return Some(elapsed);
            }
        }
        None
    }

    /// Renders the report as a self-contained JSON document: the labels, the
    /// derived summary metrics, and one object per epoch. Durations are
    /// emitted in (fractional) seconds; skipped-evaluation metrics are
    /// rendered as `null`.
    ///
    /// Serialization is hand-rolled because the build environment vendors a
    /// no-op `serde` shim; the `Serialize` derives on these structs are
    /// markers that keep the types compatible with the real crate.
    pub fn to_json(&self) -> String {
        let esc = json_escape;
        let num = marius_telemetry::json::num;
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"system\":\"{}\",\"dataset\":\"{}\",\"final_metric\":{},\"best_metric\":{},\
             \"avg_epoch_time_s\":{},\"total_time_s\":{},\"epochs\":[",
            esc(&self.system),
            esc(&self.dataset),
            num(self.final_metric()),
            num(self.best_metric()),
            num(self.avg_epoch_time().as_secs_f64()),
            num(self.total_time().as_secs_f64()),
        ));
        for (i, e) in self.epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"epoch\":{},\"loss\":{},\"metric\":{},\"epoch_time_s\":{},\
                 \"sample_time_s\":{},\"compute_time_s\":{},\"io_time_s\":{},\
                 \"io_wait_time_s\":{},\"stall_time_s\":{},\"writeback_time_s\":{},\
                 \"overlap\":{},\
                 \"io_bytes_read\":{},\"io_bytes_written\":{},\"partition_loads\":{},\
                 \"examples\":{},\"nodes_sampled\":{},\"edges_sampled\":{},\
                 \"io_retries\":{},\"faults_injected\":{},\"recoveries\":{},\
                 \"buffer_hits\":{},\"buffer_misses\":{},\"buffer_evictions\":{},\
                 \"throttle_wait_time_s\":{},\"edges_ingested\":{}}}",
                e.epoch,
                num(e.loss),
                num(e.metric),
                num(e.epoch_time.as_secs_f64()),
                num(e.sample_time.as_secs_f64()),
                num(e.compute_time.as_secs_f64()),
                num(e.io_time.as_secs_f64()),
                num(e.io_wait_time.as_secs_f64()),
                num(e.stall_time.as_secs_f64()),
                num(e.writeback_time.as_secs_f64()),
                num(e.overlap),
                e.io_bytes_read,
                e.io_bytes_written,
                e.partition_loads,
                e.examples,
                e.nodes_sampled,
                e.edges_sampled,
                e.io_retries,
                e.faults_injected,
                e.recoveries,
                e.buffer_hits,
                e.buffer_misses,
                e.buffer_evictions,
                num(e.throttle_wait_time.as_secs_f64()),
                e.edges_ingested,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the report as an aligned text table (one row per epoch).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} on {}\n", self.system, self.dataset));
        out.push_str("epoch |   loss   | metric | epoch_s | sample_s | compute_s | io_s | loads\n");
        for e in &self.epochs {
            out.push_str(&format!(
                "{:5} | {:8.4} | {:6.4} | {:7.2} | {:8.2} | {:9.2} | {:4.2} | {:5}\n",
                e.epoch,
                e.loss,
                e.metric,
                e.epoch_time.as_secs_f64(),
                e.sample_time.as_secs_f64(),
                e.compute_time.as_secs_f64(),
                e.io_time.as_secs_f64(),
                e.partition_loads,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(metrics: &[f64], secs: u64) -> ExperimentReport {
        let mut r = ExperimentReport::new("test-system", "test-data");
        for (i, &m) in metrics.iter().enumerate() {
            r.epochs.push(EpochReport {
                epoch: i,
                metric: m,
                epoch_time: Duration::from_secs(secs),
                ..Default::default()
            });
        }
        r
    }

    #[test]
    fn metric_accessors() {
        let r = report_with(&[0.1, 0.3, 0.25], 60);
        assert_eq!(r.final_metric(), 0.25);
        assert_eq!(r.best_metric(), 0.3);
        assert_eq!(r.avg_epoch_time(), Duration::from_secs(60));
        assert_eq!(r.total_time(), Duration::from_secs(180));
    }

    #[test]
    fn empty_report_defaults() {
        let r = ExperimentReport::new("s", "d");
        assert_eq!(r.final_metric(), 0.0);
        assert_eq!(r.avg_epoch_time(), Duration::ZERO);
        assert!(r.time_to_metric(0.5).is_none());
    }

    #[test]
    fn time_to_metric_accumulates_epochs() {
        let r = report_with(&[0.1, 0.2, 0.5, 0.6], 30);
        assert_eq!(r.time_to_metric(0.5), Some(Duration::from_secs(90)));
        assert!(r.time_to_metric(0.9).is_none());
    }

    #[test]
    fn cost_uses_instance_pricing() {
        let r = report_with(&[0.5], 3600);
        let cost = r.cost_per_epoch(AwsInstance::P3_2xLarge);
        assert!((cost - 3.06).abs() < 1e-9);
    }

    #[test]
    fn table_rendering_contains_rows() {
        let r = report_with(&[0.5, 0.6], 10);
        let table = r.to_table();
        assert!(table.contains("test-system"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn json_rendering_contains_labels_summary_and_epochs() {
        let r = report_with(&[0.5, 0.6], 10);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"system\":\"test-system\""));
        assert!(json.contains("\"dataset\":\"test-data\""));
        assert!(json.contains("\"final_metric\":0.6"));
        assert!(json.contains("\"epoch_time_s\":10"));
        assert!(json.contains("\"io_retries\":0"));
        assert!(json.contains("\"faults_injected\":0"));
        assert!(json.contains("\"recoveries\":0"));
        assert!(json.contains("\"buffer_hits\":0"));
        assert!(json.contains("\"buffer_misses\":0"));
        assert!(json.contains("\"buffer_evictions\":0"));
        assert!(json.contains("\"throttle_wait_time_s\":0"));
        assert!(json.contains("\"edges_ingested\":0"));
        assert_eq!(json.matches("\"epoch\":").count(), 2);
    }

    #[test]
    fn json_escapes_labels_and_renders_nan_as_null() {
        let mut r = ExperimentReport::new("sys \"quoted\"\\", "d");
        r.epochs.push(EpochReport {
            metric: f64::NAN,
            ..Default::default()
        });
        let json = r.to_json();
        assert!(json.contains("sys \\\"quoted\\\"\\\\"));
        assert!(json.contains("\"metric\":null"));
    }
}
