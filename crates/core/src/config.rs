//! Model, training and disk-storage configuration.

use marius_sampling::SamplingDirection;
use serde::{Deserialize, Serialize};

pub use marius_pipeline::PipelineConfig;

/// Which encoder architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// GraphSage with mean aggregation (the paper's default model).
    GraphSage,
    /// Single-head graph attention (the "more computationally expensive" model
    /// of Table 5).
    Gat,
    /// GCN-style normalised aggregation.
    Gcn,
    /// No encoder: decoder-only DistMult over base embeddings (the specialised
    /// knowledge-graph model of Table 8).
    None,
}

/// Model architecture configuration.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Encoder architecture.
    pub encoder: EncoderKind,
    /// Number of GNN layers (0 for [`EncoderKind::None`]).
    pub num_layers: usize,
    /// Hidden dimension of intermediate layers.
    pub hidden_dim: usize,
    /// Output dimension of the encoder (for link prediction this must equal the
    /// base-embedding dimension consumed by DistMult).
    pub output_dim: usize,
    /// Base representation / feature dimension.
    pub input_dim: usize,
    /// Neighbours sampled per node per hop, ordered away from the targets.
    pub fanouts: Vec<usize>,
    /// Which edge direction neighbours are drawn from.
    pub direction: SamplingDirection,
    /// Learning rate for GNN weights and decoder parameters.
    pub learning_rate: f32,
    /// Learning rate for sparse base-embedding updates.
    pub embedding_learning_rate: f32,
}

impl ModelConfig {
    /// The paper's node-classification configuration: a three-layer GraphSage
    /// with fanouts 30/20/10 sampling both edge directions (§7.1).
    pub fn paper_node_classification(input_dim: usize, hidden_dim: usize) -> Self {
        ModelConfig {
            encoder: EncoderKind::GraphSage,
            num_layers: 3,
            hidden_dim,
            output_dim: hidden_dim,
            input_dim,
            fanouts: vec![30, 20, 10],
            direction: SamplingDirection::Both,
            learning_rate: 0.01,
            embedding_learning_rate: 0.1,
        }
    }

    /// The paper's link-prediction GraphSage configuration: one layer, 20
    /// neighbours from both directions, DistMult decoder (§7.1).
    pub fn paper_link_prediction_graphsage(embedding_dim: usize) -> Self {
        ModelConfig {
            encoder: EncoderKind::GraphSage,
            num_layers: 1,
            hidden_dim: embedding_dim,
            output_dim: embedding_dim,
            input_dim: embedding_dim,
            fanouts: vec![20],
            direction: SamplingDirection::Both,
            learning_rate: 0.01,
            embedding_learning_rate: 0.1,
        }
    }

    /// The paper's link-prediction GAT configuration: one layer, 10 incoming
    /// neighbours (§7.1).
    pub fn paper_link_prediction_gat(embedding_dim: usize) -> Self {
        ModelConfig {
            encoder: EncoderKind::Gat,
            num_layers: 1,
            hidden_dim: embedding_dim,
            output_dim: embedding_dim,
            input_dim: embedding_dim,
            fanouts: vec![10],
            direction: SamplingDirection::Incoming,
            learning_rate: 0.01,
            embedding_learning_rate: 0.1,
        }
    }

    /// The decoder-only DistMult configuration used in Table 8.
    pub fn paper_distmult(embedding_dim: usize) -> Self {
        ModelConfig {
            encoder: EncoderKind::None,
            num_layers: 0,
            hidden_dim: embedding_dim,
            output_dim: embedding_dim,
            input_dim: embedding_dim,
            fanouts: vec![],
            direction: SamplingDirection::Both,
            learning_rate: 0.01,
            embedding_learning_rate: 0.1,
        }
    }

    /// Shrinks fanouts and dimensions for fast test / CI runs while keeping the
    /// same architecture.
    pub fn shrunk(mut self, fanout: usize, dim: usize) -> Self {
        self.fanouts = vec![fanout; self.num_layers];
        self.hidden_dim = dim;
        self.output_dim = dim;
        if self.encoder == EncoderKind::None || self.input_dim == self.output_dim {
            self.input_dim = dim;
        }
        self
    }
}

/// Mini-batch and epoch configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training examples (nodes or edges) per mini batch.
    pub batch_size: usize,
    /// Shared negative samples per mini batch (link prediction only).
    pub num_negatives: usize,
    /// Negative samples used when evaluating MRR.
    pub eval_negatives: usize,
    /// Number of epochs to train.
    pub epochs: usize,
    /// RNG seed controlling initialisation, sampling and shuffling.
    pub seed: u64,
    /// Maximum number of mini batches per epoch (caps work for quick runs; 0
    /// means no cap).
    pub max_batches_per_epoch: usize,
}

impl TrainConfig {
    /// A configuration suitable for the scaled-down experiment harnesses.
    pub fn quick(epochs: usize, seed: u64) -> Self {
        TrainConfig {
            batch_size: 256,
            num_negatives: 64,
            eval_negatives: 100,
            epochs,
            seed,
            max_batches_per_epoch: 0,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 1000,
            num_negatives: 500,
            eval_negatives: 500,
            epochs: 10,
            seed: 42,
            max_batches_per_epoch: 0,
        }
    }
}

/// Which partition replacement policy drives disk-based training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// COMET (the paper's policy, §5.1).
    Comet,
    /// BETA (the Marius baseline policy).
    Beta,
    /// Training-node caching for node classification (§5.2).
    NodeCache,
}

/// Disk-based training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskConfig {
    /// Replacement / example-assignment policy.
    pub policy: PolicyKind,
    /// Number of physical partitions `p`.
    pub num_partitions: u32,
    /// Buffer capacity `c` in physical partitions.
    pub buffer_capacity: usize,
    /// Number of logical partitions `l` (COMET only; 0 lets the auto-tuning rule
    /// `l = 2p/c` choose).
    pub num_logical: u32,
}

impl DiskConfig {
    /// COMET with the auto-tuning rule for `l`.
    pub fn comet(num_partitions: u32, buffer_capacity: usize) -> Self {
        DiskConfig {
            policy: PolicyKind::Comet,
            num_partitions,
            buffer_capacity,
            num_logical: 0,
        }
    }

    /// BETA with the given partition count and buffer.
    pub fn beta(num_partitions: u32, buffer_capacity: usize) -> Self {
        DiskConfig {
            policy: PolicyKind::Beta,
            num_partitions,
            buffer_capacity,
            num_logical: 0,
        }
    }

    /// The node-classification caching policy.
    pub fn node_cache(num_partitions: u32, buffer_capacity: usize) -> Self {
        DiskConfig {
            policy: PolicyKind::NodeCache,
            num_partitions,
            buffer_capacity,
            num_logical: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_match_section_7_1() {
        let nc = ModelConfig::paper_node_classification(128, 256);
        assert_eq!(nc.num_layers, 3);
        assert_eq!(nc.fanouts, vec![30, 20, 10]);
        assert_eq!(nc.direction, SamplingDirection::Both);

        let gs = ModelConfig::paper_link_prediction_graphsage(100);
        assert_eq!(gs.num_layers, 1);
        assert_eq!(gs.fanouts, vec![20]);

        let gat = ModelConfig::paper_link_prediction_gat(100);
        assert_eq!(gat.encoder, EncoderKind::Gat);
        assert_eq!(gat.fanouts, vec![10]);
        assert_eq!(gat.direction, SamplingDirection::Incoming);

        let dm = ModelConfig::paper_distmult(50);
        assert_eq!(dm.encoder, EncoderKind::None);
        assert!(dm.fanouts.is_empty());
    }

    #[test]
    fn shrunk_keeps_architecture() {
        let m = ModelConfig::paper_node_classification(128, 256).shrunk(5, 16);
        assert_eq!(m.num_layers, 3);
        assert_eq!(m.fanouts, vec![5, 5, 5]);
        assert_eq!(m.hidden_dim, 16);
    }

    #[test]
    fn train_config_defaults() {
        let c = TrainConfig::default();
        assert_eq!(c.epochs, 10);
        assert_eq!(c.num_negatives, 500);
        let q = TrainConfig::quick(2, 7);
        assert_eq!(q.epochs, 2);
        assert_eq!(q.seed, 7);
    }

    #[test]
    fn disk_config_constructors() {
        assert_eq!(DiskConfig::comet(16, 4).policy, PolicyKind::Comet);
        assert_eq!(DiskConfig::beta(16, 4).policy, PolicyKind::Beta);
        assert_eq!(DiskConfig::node_cache(8, 4).policy, PolicyKind::NodeCache);
    }
}
