//! End-to-end out-of-core GNN training (the MariusGNN system proper).
//!
//! This crate ties the substrates together into the pipeline of Figure 2:
//!
//! * [`config`] — model and training configuration (encoder kind, fanouts,
//!   batch sizes, negative counts, disk policy selection).
//! * [`source::RepresentationSource`] — the abstraction over where base
//!   representations live: an in-memory [`marius_gnn::EmbeddingTable`], a fixed
//!   feature matrix, or the out-of-core [`marius_storage::PartitionBuffer`].
//! * [`models`] — the trainable models: a GNN encoder plus DistMult decoder for
//!   link prediction and a GNN encoder plus softmax head for node
//!   classification, each with a full manual forward/backward mini-batch step.
//! * [`trainer`] — epoch orchestration for in-memory and disk-based training,
//!   including the partition-buffer walk over a replacement policy's epoch plan,
//!   per-phase timing (sampling / compute / IO), and evaluation (accuracy, MRR).
//!   Disk-based epochs run either sequentially or on the staged
//!   [`marius_pipeline::Pipeline`] runtime (prefetch / batch construction /
//!   compute overlapped), selected by [`config::PipelineConfig`].
//! * [`report`] — experiment reporting structures shared by the examples and the
//!   benchmark harnesses that regenerate the paper's tables.

pub mod config;
pub mod models;
pub mod report;
pub mod source;
pub mod trainer;

pub use config::{DiskConfig, EncoderKind, ModelConfig, PipelineConfig, PolicyKind, TrainConfig};
pub use models::{
    LinkBatchBuilder, LinkPredictionModel, NodeBatchBuilder, NodeClassificationModel,
    PreparedLinkBatch, PreparedNodeBatch,
};
pub use report::{EpochReport, ExperimentReport};
pub use source::{FixedFeatureSource, RepresentationSource, TableSource};
pub use trainer::{LinkPredictionTrainer, NodeClassificationTrainer};
