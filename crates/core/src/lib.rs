//! End-to-end out-of-core GNN training (the MariusGNN system proper).
//!
//! This crate ties the substrates together into the pipeline of Figure 2,
//! organised around a task-generic training engine:
//!
//! * [`config`] — model and training configuration (encoder kind, fanouts,
//!   batch sizes, negative counts, disk policy selection).
//! * [`source::RepresentationSource`] — the abstraction over where base
//!   representations live: an in-memory [`marius_gnn::EmbeddingTable`], a fixed
//!   feature matrix, or the out-of-core [`marius_storage::PartitionBuffer`].
//! * [`models`] — the trainable models: a GNN encoder plus DistMult decoder for
//!   link prediction and a GNN encoder plus softmax head for node
//!   classification, each split into a `prepare` (CPU batch construction) and
//!   `train_prepared` (compute) half so batches can be built on worker threads.
//! * [`task`] — the [`task::Task`] trait capturing everything task-specific:
//!   example enumeration, batch preparation, disk layout, and evaluation.
//!   [`task::LinkPredictionTask`], [`task::NodeClassificationTask`] and
//!   [`task::TemporalLinkPredictionTask`] are the built-in workloads.
//! * [`trainer`] — the single generic [`trainer::Trainer`]`<T: Task>` that owns
//!   the in-memory, sequential-disk, and pipelined-disk epoch executors once
//!   for every task, including the partition-buffer walk over a replacement
//!   policy's epoch plan, per-phase timing (sampling / compute / IO),
//!   eval-cadence control, per-epoch hooks, and evaluation. Disk-based epochs
//!   run either sequentially or on the staged [`marius_pipeline::Pipeline`]
//!   runtime (prefetch / batch construction / compute overlapped), selected by
//!   [`config::PipelineConfig`]; the two executors are bit-identical under a
//!   fixed seed.
//! * [`report`] — experiment reporting structures (with JSON export) shared by
//!   the examples and the benchmark harnesses that regenerate the paper's
//!   tables.
//! * [`checkpoint`] — the durable-state contract: [`checkpoint::StateDict`]
//!   blobs behind the [`checkpoint::Persist`] trait, and the versioned
//!   temp-dir + rename checkpoint layout that lets a resumed run reproduce the
//!   uninterrupted run's loss trajectory bit-for-bit (see that module's docs
//!   for the on-disk format).
//!
//! Downstream users who just want to train something should start from the
//! `marius::Session` builder in the workspace root crate, which wraps this
//! engine behind a single entry point. The `LinkPredictionTrainer` and
//! `NodeClassificationTrainer` names of earlier revisions remain available as
//! deprecated aliases of `Trainer<T>`.

pub mod checkpoint;
pub mod config;
pub mod models;
pub mod report;
pub mod source;
pub mod task;
pub mod trainer;

pub use checkpoint::{Checkpoint, Persist, ResumeState, StateDict, StorageKind, StreamState};
pub use config::{DiskConfig, EncoderKind, ModelConfig, PipelineConfig, PolicyKind, TrainConfig};
pub use models::{
    LinkBatchBuilder, LinkPredictionModel, NodeBatchBuilder, NodeClassificationModel,
    PreparedLinkBatch, PreparedNodeBatch,
};
pub use report::{EpochReport, ExperimentReport};
pub use source::{FixedFeatureSource, RepresentationSource, TableSource};
pub use task::{
    DiskSetup, LinkPredictionTask, NodeClassificationTask, Task, TemporalLinkPredictionTask,
};
pub use trainer::{read_all_embeddings, EpochHook, IngestHook, Trainer};
#[allow(deprecated)]
pub use trainer::{LinkPredictionTrainer, NodeClassificationTrainer};
