//! Durable training state: the [`StateDict`] / [`Persist`] contract and the
//! versioned on-disk checkpoint format.
//!
//! Out-of-core training makes long-running disk-based epochs the norm; a
//! restart must not cost those epochs. This module defines *what a model's
//! durable state is* — named, versioned tensor blobs behind the [`Persist`]
//! trait — and the checkpoint layout that makes a resumed run's loss
//! trajectory bit-identical to the uninterrupted run (pinned by the
//! `checkpoint_resume` golden tests at the workspace root).
//!
//! # On-disk layout
//!
//! A checkpoint *root* directory holds immutable version directories plus an
//! atomically swapped `LATEST` pointer:
//!
//! ```text
//! <root>/
//!   LATEST                    # name of the newest complete version, e.g. "epoch-000002"
//!   epoch-000002/             # one immutable directory per checkpointed epoch boundary
//!     manifest.json           # the durable contract (schema below)
//!     state.bin               # concatenated little-endian blob payloads
//!     progress.json           # human-readable ExperimentReport (write-only)
//!     partitions/             # PartitionStore snapshot (disk runs with write-back only)
//!   epoch-000001/             # the previous version, retained for crash safety
//! ```
//!
//! Every write is staged and renamed: version directories are assembled at
//! `<name>.tmp` and renamed into place only once complete, the `LATEST` file
//! is replaced via temp-file + rename, and the partition snapshot inside the
//! version is itself a temp-dir + rename
//! ([`marius_storage::PartitionStore::snapshot_to`]). The staged version is
//! fsynced (every file, then its directories) before any rename, and the
//! renames and `LATEST` flip are fsynced in order, so the guarantee holds
//! across power loss as well as process crashes: a crash at any point leaves
//! `LATEST` naming the last fully durable version — a reader can never
//! observe a torn checkpoint. Old versions beyond the newest two are pruned
//! after the pointer flip.
//!
//! # Manifest schema (`manifest.json`, format version 1)
//!
//! ```json
//! {
//!   "format": "marius-checkpoint", "version": 1,
//!   "task": "lp",                        // Task::slug of the checkpointed task
//!   "epochs_completed": 2,               // resume starts at this epoch index
//!   "every": 1, "eval_every": 1,         // checkpoint cadence + eval cadence
//!   "rng": ["0x..", "0x..", "0x..", "0x.."],  // trainer RNG cursor (xoshiro256** words)
//!   "emulated_device": null,             // or the IoCostModel of an emulated-device run
//!   "model": { .. }, "train": { .. },    // ModelConfig / TrainConfig
//!   "storage": {"kind": "memory"} | {"kind": "disk", ..DiskConfig..},
//!   "pipeline": { ..PipelineConfig.. },
//!   "dataset": { ..DatasetSpec.., "seed": 42 },  // regenerates the dataset bit-for-bit
//!   "stream": null,                      // or {"seed", "batch_size", "batches_applied",
//!                                        //     "edges_ingested"} on streaming runs
//!   "store_snapshot": true,              // whether partitions/ exists
//!   "blobs": [ {"name", "rows", "cols", "dtype", "offset", "len_bytes", "fnv64"} ],
//!   "epochs": [ {"epoch", "loss_bits", "metric_bits", ..} ]
//! }
//! ```
//!
//! # Versioning rules
//!
//! * `version` is bumped on any incompatible change to the manifest schema or
//!   blob encoding; [`Checkpoint::open`] rejects versions it does not speak.
//! * Blob *names* are the compatibility surface of a model's state
//!   (`model.encoder.l0.p0.value`, `source.table.values`, ...); loaders must
//!   reject missing names or shape mismatches rather than guess.
//! * Floating-point values that feed resumed computation (`loss_bits`,
//!   `metric_bits`, the blob payloads, the RNG words) are stored as exact bit
//!   patterns; human-oriented copies live in `progress.json`.
//! * Every blob carries an FNV-1a 64 checksum over its payload bytes;
//!   [`Checkpoint::open`] verifies all of them before returning.
//!
//! # Bit-exact resume
//!
//! A checkpoint captures, at an epoch boundary: the epoch counter, the
//! trainer's RNG cursor, every model parameter *and* its Adagrad accumulator,
//! the learnable base representations (an in-memory table dump or a partition
//! snapshot taken after the write-back ledger drained — see
//! [`marius_pipeline::writeback_safe_point`]), the in-memory example-order
//! permutation, and the per-epoch report so far. Resume replays the fresh
//! run's construction path (consuming identical RNG draws for dataset,
//! partitioning, and parameter init), then overlays the saved state and RNG
//! cursor — from which point the continuation is indistinguishable from the
//! uninterrupted run.

use crate::config::{DiskConfig, ModelConfig, PipelineConfig, PolicyKind, TrainConfig};
use crate::report::{json_escape, EpochReport, ExperimentReport};
use marius_gnn::EmbeddingTable;
use marius_graph::datasets::{DatasetSpec, ScaledDataset, Task as DatasetTask};
use marius_sampling::SamplingDirection;
use marius_storage::{atomic_write, IoCostModel, PartitionStore, Result, StorageError};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

pub mod json;
use json::Json;

/// Format identifier stamped into every manifest.
pub const FORMAT: &str = "marius-checkpoint";
/// Current manifest/blob format version. Bumped on incompatible changes.
pub const FORMAT_VERSION: u64 = 1;

/// FNV-1a 64-bit checksum (the per-blob integrity check).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(reason: impl Into<String>) -> StorageError {
    StorageError::checkpoint(reason)
}

/// Element type of a [`Blob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// 32-bit IEEE-754 floats (parameters, optimizer state, embeddings).
    F32,
    /// 64-bit unsigned integers (permutations, RNG material, counters).
    U64,
}

impl DType {
    fn as_str(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::U64 => "u64",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        match s {
            "f32" => Ok(DType::F32),
            "u64" => Ok(DType::U64),
            other => Err(corrupt(format!("unknown blob dtype {other:?}"))),
        }
    }

    fn width(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::U64 => 8,
        }
    }
}

/// One named tensor payload inside a [`StateDict`].
#[derive(Debug, Clone, PartialEq)]
pub struct Blob {
    name: String,
    rows: usize,
    cols: usize,
    dtype: DType,
    data: Vec<u8>,
}

impl Blob {
    /// The blob's name (the compatibility surface — see the module docs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// FNV-1a 64 checksum over the payload bytes.
    pub fn checksum(&self) -> u64 {
        fnv1a64(&self.data)
    }

    /// Decodes the payload as `f32` values.
    pub fn as_f32(&self) -> Result<Vec<f32>> {
        if self.dtype != DType::F32 {
            return Err(corrupt(format!(
                "blob {:?} holds {} data, not f32",
                self.name,
                self.dtype.as_str()
            )));
        }
        Ok(self
            .data
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Decodes the payload as `u64` values.
    pub fn as_u64(&self) -> Result<Vec<u64>> {
        if self.dtype != DType::U64 {
            return Err(corrupt(format!(
                "blob {:?} holds {} data, not u64",
                self.name,
                self.dtype.as_str()
            )));
        }
        Ok(self
            .data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
}

/// An ordered collection of named, shaped tensor blobs: the in-memory form of
/// a checkpoint's durable state. Produced by [`Persist::save_state`] (and the
/// `Task::save_state` hooks), consumed by the matching `load_state`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    blobs: Vec<Blob>,
}

impl StateDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        StateDict::default()
    }

    /// Number of blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the dictionary holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// The blobs, in insertion order.
    pub fn blobs(&self) -> &[Blob] {
        &self.blobs
    }

    /// Looks a blob up by name.
    pub fn get(&self, name: &str) -> Option<&Blob> {
        self.blobs.iter().find(|b| b.name == name)
    }

    fn push(&mut self, blob: Blob) {
        assert!(
            self.get(&blob.name).is_none(),
            "duplicate blob name {:?}",
            blob.name
        );
        self.blobs.push(blob);
    }

    /// Appends an `f32` blob of shape `(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols` or the name is already taken.
    pub fn push_f32(&mut self, name: impl Into<String>, rows: usize, cols: usize, values: &[f32]) {
        assert_eq!(values.len(), rows * cols, "blob shape mismatch");
        let mut data = Vec::with_capacity(values.len() * 4);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        self.push(Blob {
            name: name.into(),
            rows,
            cols,
            dtype: DType::F32,
            data,
        });
    }

    /// Appends a `u64` blob of shape `(values.len(), 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn push_u64(&mut self, name: impl Into<String>, values: &[u64]) {
        let mut data = Vec::with_capacity(values.len() * 8);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        self.push(Blob {
            name: name.into(),
            rows: values.len(),
            cols: 1,
            dtype: DType::U64,
            data,
        });
    }

    /// Fetches an `f32` blob, rejecting a missing name or shape mismatch.
    pub fn require_f32(&self, name: &str, rows: usize, cols: usize) -> Result<Vec<f32>> {
        let blob = self
            .get(name)
            .ok_or_else(|| corrupt(format!("checkpoint state has no blob {name:?}")))?;
        if blob.shape() != (rows, cols) {
            return Err(corrupt(format!(
                "blob {name:?} has shape {:?}, expected ({rows}, {cols})",
                blob.shape()
            )));
        }
        blob.as_f32()
    }

    /// Fetches a `u64` blob by name, any length.
    pub fn require_u64(&self, name: &str) -> Result<Vec<u64>> {
        self.get(name)
            .ok_or_else(|| corrupt(format!("checkpoint state has no blob {name:?}")))?
            .as_u64()
    }

    /// Serialises every payload into one buffer (the `state.bin` content) and
    /// the per-blob manifest entries describing it.
    pub fn encode(&self) -> (Vec<u8>, Vec<BlobEntry>) {
        let mut bytes = Vec::new();
        let mut entries = Vec::with_capacity(self.blobs.len());
        for blob in &self.blobs {
            entries.push(BlobEntry {
                name: blob.name.clone(),
                rows: blob.rows,
                cols: blob.cols,
                dtype: blob.dtype,
                offset: bytes.len(),
                len_bytes: blob.data.len(),
                fnv64: blob.checksum(),
            });
            bytes.extend_from_slice(&blob.data);
        }
        (bytes, entries)
    }

    /// Rebuilds a dictionary from manifest entries plus the `state.bin`
    /// buffer, verifying every length, element width, and checksum.
    pub fn decode(entries: &[BlobEntry], bytes: &[u8]) -> Result<Self> {
        let mut dict = StateDict::new();
        for e in entries {
            let end = e
                .offset
                .checked_add(e.len_bytes)
                .filter(|&end| end <= bytes.len());
            let Some(end) = end else {
                return Err(corrupt(format!(
                    "blob {:?} extends past the end of state.bin ({} + {} > {})",
                    e.name,
                    e.offset,
                    e.len_bytes,
                    bytes.len()
                )));
            };
            if e.len_bytes != e.rows * e.cols * e.dtype.width() {
                return Err(corrupt(format!(
                    "blob {:?} length {} does not match shape ({}, {}) of {}",
                    e.name,
                    e.len_bytes,
                    e.rows,
                    e.cols,
                    e.dtype.as_str()
                )));
            }
            let data = bytes[e.offset..end].to_vec();
            let sum = fnv1a64(&data);
            if sum != e.fnv64 {
                return Err(corrupt(format!(
                    "blob {:?} checksum mismatch: manifest {:#018x}, data {sum:#018x}",
                    e.name, e.fnv64
                )));
            }
            dict.push(Blob {
                name: e.name.clone(),
                rows: e.rows,
                cols: e.cols,
                dtype: e.dtype,
                data,
            });
        }
        Ok(dict)
    }
}

/// Manifest record describing one blob inside `state.bin`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobEntry {
    /// Blob name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Element type.
    pub dtype: DType,
    /// Byte offset of the payload inside `state.bin`.
    pub offset: usize,
    /// Payload length in bytes.
    pub len_bytes: usize,
    /// FNV-1a 64 checksum of the payload.
    pub fnv64: u64,
}

/// Types whose durable state round-trips through a [`StateDict`].
///
/// `save_state` appends the type's named blobs; `load_state` restores them,
/// rejecting missing names and shape mismatches (a checkpoint from a different
/// architecture must fail loudly, not load partially).
pub trait Persist {
    /// Appends this value's durable state to `dict`.
    fn save_state(&self, dict: &mut StateDict);

    /// Restores this value's durable state from `dict`.
    fn load_state(&mut self, dict: &StateDict) -> Result<()>;
}

impl Persist for EmbeddingTable {
    fn save_state(&self, dict: &mut StateDict) {
        let (n, d) = (self.num_nodes(), self.dim());
        dict.push_f32("source.table.values", n, d, self.raw_values());
        dict.push_f32("source.table.state", n, d, self.raw_state());
    }

    fn load_state(&mut self, dict: &StateDict) -> Result<()> {
        let (n, d) = (self.num_nodes(), self.dim());
        let values = dict.require_f32("source.table.values", n, d)?;
        let state = dict.require_f32("source.table.state", n, d)?;
        self.load_rows(0, &values, &state);
        Ok(())
    }
}

/// Where a checkpointed run kept its base representations.
#[derive(Debug, Clone)]
pub enum StorageKind {
    /// Everything resident in memory (`M-GNN_Mem`).
    InMemory,
    /// Out-of-core over a partition store (`M-GNN_Disk`).
    Disk(DiskConfig),
}

/// Durable cursor of a streaming-ingest run: how much of the seeded edge
/// stream has been applied to the training buckets at this checkpoint.
///
/// A streamed dataset is never persisted wholesale. The manifest records the
/// base dataset as `(spec, seed)` plus this cursor; resume regenerates the
/// base, replays the seeded stream's first `batches_applied` batches (each
/// batch is a pure function of `(seed, index)`), and appends them to the
/// training edges — reconstructing the grown dataset bit-for-bit. Missing
/// from a manifest (pre-streaming checkpoints) means "no stream": parse-back
/// is version-compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamState {
    /// Seed of the edge stream (independent of the trainer RNG).
    pub seed: u64,
    /// Edges per stream batch.
    pub batch_size: usize,
    /// Stream batches applied to the training buckets so far.
    pub batches_applied: u64,
    /// Total edges ingested so far (`batches_applied * batch_size`, recorded
    /// explicitly so readers need not re-derive it).
    pub edges_ingested: u64,
}

/// Everything [`write_versioned`] needs to persist one epoch-boundary
/// checkpoint. Assembled by `Trainer<T>` at the end of a checkpointed epoch.
pub struct CheckpointSnapshot<'a> {
    /// `Task::slug` of the running task (validated on resume).
    pub task_slug: &'a str,
    /// Number of fully completed epochs (resume starts here).
    pub epochs_completed: usize,
    /// Checkpoint cadence in epochs.
    pub every: usize,
    /// Evaluation cadence in epochs.
    pub eval_every: usize,
    /// The trainer RNG's cursor at the epoch boundary.
    pub rng_state: [u64; 4],
    /// The emulated IO device the run trains against, if any — persisted so a
    /// resumed run continues under the same IO regime.
    pub emulated_device: Option<&'a IoCostModel>,
    /// Model architecture.
    pub model: &'a ModelConfig,
    /// Batch/epoch configuration.
    pub train: &'a TrainConfig,
    /// Storage selection.
    pub storage: &'a StorageKind,
    /// Pipelined-runtime configuration.
    pub pipeline: &'a PipelineConfig,
    /// The dataset the run trains on (spec + generation seed are persisted).
    pub data: &'a ScaledDataset,
    /// Streaming-ingest cursor, when the run ingests from an edge stream.
    pub stream: Option<StreamState>,
    /// Model (and in-memory source) state blobs.
    pub state: &'a StateDict,
    /// When `Some`, the store's partition files are snapshotted into the
    /// version directory. Must be at a write-back safe point (see
    /// [`marius_pipeline::writeback_safe_point`]).
    pub store: Option<&'a PartitionStore>,
    /// Per-epoch reports so far (persisted bit-exactly in the manifest, plus
    /// human-readably in `progress.json`).
    pub report: &'a ExperimentReport,
}

/// Flushes a file's (or directory's) data and metadata to the device.
/// Rename-based atomicity alone survives process crashes; surviving *power
/// loss* additionally needs every staged byte durable before the rename, and
/// the directory entries durable before `LATEST` flips (otherwise the flip
/// can reach disk while the version it names is still zero-filled pages).
fn fsync_path(path: &Path) -> std::io::Result<()> {
    fs::File::open(path)?.sync_all()
}

/// Recursively fsyncs every file, then every directory, under `dir` —
/// including hard-linked snapshot files (syncing a link flushes the shared
/// inode's data).
fn fsync_tree(dir: &Path) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            fsync_tree(&path)?;
        } else {
            fsync_path(&path)?;
        }
    }
    fsync_path(dir)
}

/// Writes one versioned checkpoint under `root` and atomically flips `LATEST`
/// to it. Returns the version directory's path. See the module docs for the
/// crash-safety argument.
pub fn write_versioned(root: &Path, snapshot: &CheckpointSnapshot<'_>) -> Result<PathBuf> {
    fs::create_dir_all(root)?;
    let version = version_name(snapshot.epochs_completed);
    let staging = root.join(format!("{version}.tmp"));
    if staging.exists() {
        fs::remove_dir_all(&staging)?;
    }
    fs::create_dir_all(&staging)?;

    // Checkpoint placement rides the store's fault-injection and retry
    // layers when the run has a store attached: a transient blip while
    // persisting durable state retries exactly like a partition write, and
    // an injected fault plan exercises the checkpoint path too. In-memory
    // runs fall back to a plain atomic write.
    let place = |name: &str, path: &Path, bytes: &[u8]| -> Result<()> {
        match snapshot.store {
            Some(store) => store.place_file(&format!("checkpoint/{name}"), path, bytes),
            None => atomic_write(path, bytes).map_err(StorageError::from),
        }
    };
    let (bin, entries) = snapshot.state.encode();
    place("state.bin", &staging.join("state.bin"), &bin)?;
    if let Some(store) = snapshot.store {
        store.snapshot_to(staging.join("partitions"))?;
    }
    place(
        "progress.json",
        &staging.join("progress.json"),
        snapshot.report.to_json().as_bytes(),
    )?;
    place(
        "manifest.json",
        &staging.join("manifest.json"),
        manifest_json(snapshot, &entries).as_bytes(),
    )?;

    // Make the staged version durable before any rename: after the LATEST
    // flip below reaches disk, every byte it names must already be there.
    fsync_tree(&staging)?;

    let final_dir = root.join(&version);
    if final_dir.exists() {
        // Re-checkpointing the same epoch (a restarted-from-scratch run over
        // an old checkpoint directory): never delete the version `LATEST`
        // may currently name. Rename it aside first — a crash between the
        // two renames leaves `LATEST` briefly dangling, which
        // [`Checkpoint::open`]'s fallback scan covers — and drop the old
        // bytes only after the swap.
        let trash = root.join(format!("{version}.old.tmp"));
        let _ = fs::remove_dir_all(&trash);
        fs::rename(&final_dir, &trash)?;
        fs::rename(&staging, &final_dir)?;
        let _ = fs::remove_dir_all(&trash);
    } else {
        fs::rename(&staging, &final_dir)?;
    }
    // Persist the rename itself, then the pointer, then the pointer's
    // directory entry — in that order, so a power cut at any point leaves
    // LATEST naming a fully durable version (possibly the previous one).
    fsync_path(root)?;
    place("LATEST", &root.join("LATEST"), version.as_bytes())?;
    fsync_path(&root.join("LATEST"))?;
    fsync_path(root)?;
    prune_versions(root, &version)?;
    Ok(final_dir)
}

fn version_name(epochs_completed: usize) -> String {
    format!("epoch-{epochs_completed:06}")
}

/// Removes version directories older than the newest two (the current one and
/// its predecessor, kept so a crash while *reading* the newest never strands
/// the operator), plus any abandoned `.tmp` staging directories.
fn prune_versions(root: &Path, current: &str) -> Result<()> {
    let mut versions: Vec<String> = Vec::new();
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !entry.path().is_dir() {
            continue;
        }
        if name.ends_with(".tmp") {
            let _ = fs::remove_dir_all(entry.path());
        } else if name.starts_with("epoch-") {
            versions.push(name);
        }
    }
    versions.sort();
    let keep_from = versions.len().saturating_sub(2);
    for name in &versions[..keep_from] {
        if name != current {
            let _ = fs::remove_dir_all(root.join(name));
        }
    }
    Ok(())
}

/// The state a `Trainer<T>` needs to continue a checkpointed run.
#[derive(Debug, Clone)]
pub struct ResumeState {
    /// Epoch index training resumes at (== epochs completed at checkpoint).
    pub start_epoch: usize,
    /// The trainer RNG cursor to restore once construction has replayed.
    pub rng_state: [u64; 4],
    /// Model / source / trainer blobs.
    pub state: StateDict,
    /// Partition snapshot to restore into the fresh store, when the run was
    /// disk-based with learnable (write-back) representations.
    pub store_snapshot: Option<PathBuf>,
    /// Completed epochs' reports, seeded into the resumed run's report.
    pub prior_epochs: Vec<EpochReport>,
}

/// A loaded, checksum-verified checkpoint.
#[derive(Debug)]
pub struct Checkpoint {
    /// The version directory this checkpoint was loaded from.
    pub dir: PathBuf,
    /// `Task::slug` of the run that wrote the checkpoint.
    pub task_slug: String,
    /// Fully completed epochs.
    pub epochs_completed: usize,
    /// Checkpoint cadence.
    pub every: usize,
    /// Evaluation cadence.
    pub eval_every: usize,
    /// Trainer RNG cursor.
    pub rng_state: [u64; 4],
    /// The emulated IO device the run trains against, if any.
    pub emulated_device: Option<IoCostModel>,
    /// Model architecture.
    pub model: ModelConfig,
    /// Batch/epoch configuration (including the total epoch target).
    pub train: TrainConfig,
    /// Storage selection.
    pub storage: StorageKind,
    /// Pipelined-runtime configuration.
    pub pipeline: PipelineConfig,
    /// Dataset specification (regenerates the dataset with `dataset_seed`).
    pub dataset_spec: DatasetSpec,
    /// Dataset generation seed.
    pub dataset_seed: u64,
    /// Streaming-ingest cursor (`None` for frozen-dataset runs, and for
    /// manifests written before streaming existed).
    pub stream: Option<StreamState>,
    /// Model / source / trainer state blobs.
    pub state: StateDict,
    /// Whether the version directory carries a partition snapshot.
    pub has_store_snapshot: bool,
    /// Completed epochs' reports, bit-exact.
    pub prior_epochs: Vec<EpochReport>,
}

impl Checkpoint {
    /// Opens the newest complete checkpoint under `root` (the directory
    /// passed to `checkpoint_to` / [`write_versioned`]), verifying the format
    /// version and every blob checksum.
    ///
    /// `LATEST` names the version tried first. If that version's directory
    /// is *missing* — the one crash window is a same-epoch re-checkpoint
    /// dying between the rename-aside and rename-in of [`write_versioned`] —
    /// the retained older versions are tried newest-first. A version that
    /// exists but fails to load (checksum corruption, format-version skew)
    /// is NOT silently skipped: falling back there would quietly rewind
    /// training progress, so the failure surfaces to the caller instead.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref();
        let latest = fs::read_to_string(root.join("LATEST")).map_err(|e| {
            corrupt(format!(
                "no checkpoint at {}: cannot read LATEST ({e})",
                root.display()
            ))
        })?;
        let latest = latest.trim().to_string();
        let latest_dir = root.join(&latest);
        let primary_err = match Self::open_version(latest_dir.clone()) {
            Ok(ckpt) => return Ok(ckpt),
            Err(e) => e,
        };
        if latest_dir.is_dir() {
            // The named version exists but is unreadable — corruption or
            // version skew, not the dangling-rename window. Fail loudly.
            return Err(primary_err);
        }
        let mut versions: Vec<String> = match fs::read_dir(root) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_dir())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("epoch-") && !n.ends_with(".tmp") && *n != latest)
                .collect(),
            Err(_) => Vec::new(),
        };
        versions.sort();
        for name in versions.iter().rev() {
            if let Ok(ckpt) = Self::open_version(root.join(name)) {
                return Ok(ckpt);
            }
        }
        Err(primary_err)
    }

    /// Loads and verifies one specific version directory.
    fn open_version(dir: PathBuf) -> Result<Self> {
        let manifest = fs::read_to_string(dir.join("manifest.json")).map_err(|e| {
            corrupt(format!(
                "checkpoint version {} is missing its manifest ({e})",
                dir.display()
            ))
        })?;
        let doc = Json::parse(&manifest)
            .map_err(|e| corrupt(format!("manifest at {} is invalid: {e}", dir.display())))?;

        if doc.str_field("format")? != FORMAT {
            return Err(corrupt("manifest is not a marius checkpoint"));
        }
        let version = doc.u64_field("version")?;
        if version != FORMAT_VERSION {
            return Err(corrupt(format!(
                "checkpoint format version {version} is not supported (this build speaks {FORMAT_VERSION})"
            )));
        }

        let rng_arr = doc.field("rng")?.as_array()?;
        if rng_arr.len() != 4 {
            return Err(corrupt("rng cursor must have 4 words"));
        }
        let mut rng_state = [0u64; 4];
        for (i, w) in rng_arr.iter().enumerate() {
            rng_state[i] = w.as_hex_u64()?;
        }

        let entries: Vec<BlobEntry> = doc
            .field("blobs")?
            .as_array()?
            .iter()
            .map(blob_entry_from_json)
            .collect::<Result<_>>()?;
        let bin = fs::read(dir.join("state.bin"))?;
        let state = StateDict::decode(&entries, &bin)?;

        let has_store_snapshot = doc.bool_field("store_snapshot")?;
        if has_store_snapshot && !dir.join("partitions").is_dir() {
            return Err(corrupt(format!(
                "checkpoint {} promises a partition snapshot but has none",
                dir.display()
            )));
        }

        let prior_epochs = doc
            .field("epochs")?
            .as_array()?
            .iter()
            .map(epoch_from_json)
            .collect::<Result<_>>()?;

        Ok(Checkpoint {
            dir,
            task_slug: doc.str_field("task")?.to_string(),
            epochs_completed: doc.u64_field("epochs_completed")? as usize,
            every: doc.u64_field("every")? as usize,
            eval_every: doc.u64_field("eval_every")? as usize,
            rng_state,
            emulated_device: emulated_device_from_json(doc.field("emulated_device")?)?,
            model: model_from_json(doc.field("model")?)?,
            train: train_from_json(doc.field("train")?)?,
            storage: storage_from_json(doc.field("storage")?)?,
            pipeline: pipeline_from_json(doc.field("pipeline")?)?,
            dataset_spec: dataset_from_json(doc.field("dataset")?)?,
            dataset_seed: doc.field("dataset")?.u64_field("seed")?,
            // Manifests written before streaming existed have no "stream"
            // field at all; both that and an explicit null mean "no stream".
            stream: match doc.field("stream") {
                Ok(j) => stream_from_json(j)?,
                Err(_) => None,
            },
            state,
            has_store_snapshot,
            prior_epochs,
        })
    }

    /// The trainer-facing resume payload.
    pub fn resume_state(&self) -> ResumeState {
        ResumeState {
            start_epoch: self.epochs_completed,
            rng_state: self.rng_state,
            state: self.state.clone(),
            store_snapshot: self.has_store_snapshot.then(|| self.dir.join("partitions")),
            prior_epochs: self.prior_epochs.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest rendering.
// ---------------------------------------------------------------------------

fn manifest_json(s: &CheckpointSnapshot<'_>, entries: &[BlobEntry]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\"format\":\"{FORMAT}\",\"version\":{FORMAT_VERSION},\"task\":\"{}\",\
         \"epochs_completed\":{},\"every\":{},\"eval_every\":{},",
        json_escape(s.task_slug),
        s.epochs_completed,
        s.every,
        s.eval_every,
    ));
    out.push_str(&format!(
        "\"rng\":[\"{:#018x}\",\"{:#018x}\",\"{:#018x}\",\"{:#018x}\"],",
        s.rng_state[0], s.rng_state[1], s.rng_state[2], s.rng_state[3]
    ));
    out.push_str(&format!(
        "\"emulated_device\":{},",
        emulated_device_to_json(s.emulated_device)
    ));
    out.push_str(&format!("\"model\":{},", model_to_json(s.model)));
    out.push_str(&format!("\"train\":{},", train_to_json(s.train)));
    out.push_str(&format!("\"storage\":{},", storage_to_json(s.storage)));
    out.push_str(&format!("\"pipeline\":{},", pipeline_to_json(s.pipeline)));
    out.push_str(&format!(
        "\"dataset\":{},",
        dataset_to_json(&s.data.spec, s.data.seed)
    ));
    out.push_str(&format!(
        "\"stream\":{},",
        stream_to_json(s.stream.as_ref())
    ));
    out.push_str(&format!("\"store_snapshot\":{},", s.store.is_some()));
    out.push_str("\"blobs\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"rows\":{},\"cols\":{},\"dtype\":\"{}\",\
             \"offset\":{},\"len_bytes\":{},\"fnv64\":\"{:#018x}\"}}",
            json_escape(&e.name),
            e.rows,
            e.cols,
            e.dtype.as_str(),
            e.offset,
            e.len_bytes,
            e.fnv64,
        ));
    }
    out.push_str("],\"epochs\":[");
    for (i, e) in s.report.epochs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&epoch_to_json(e));
    }
    out.push_str("]}");
    out
}

fn blob_entry_from_json(j: &Json) -> Result<BlobEntry> {
    Ok(BlobEntry {
        name: j.str_field("name")?.to_string(),
        rows: j.u64_field("rows")? as usize,
        cols: j.u64_field("cols")? as usize,
        dtype: DType::parse(j.str_field("dtype")?)?,
        offset: j.u64_field("offset")? as usize,
        len_bytes: j.u64_field("len_bytes")? as usize,
        fnv64: j.field("fnv64")?.as_hex_u64()?,
    })
}

fn epoch_to_json(e: &EpochReport) -> String {
    format!(
        "{{\"epoch\":{},\"loss_bits\":\"{:#018x}\",\"metric_bits\":\"{:#018x}\",\
         \"overlap_bits\":\"{:#018x}\",\
         \"epoch_time_ns\":{},\"sample_time_ns\":{},\"compute_time_ns\":{},\
         \"io_time_ns\":{},\"io_wait_time_ns\":{},\"stall_time_ns\":{},\
         \"writeback_time_ns\":{},\"io_bytes_read\":{},\"io_bytes_written\":{},\
         \"partition_loads\":{},\"examples\":{},\"nodes_sampled\":{},\"edges_sampled\":{},\
         \"io_retries\":{},\"faults_injected\":{},\"recoveries\":{},\
         \"buffer_hits\":{},\"buffer_misses\":{},\"buffer_evictions\":{},\
         \"throttle_wait_time_ns\":{},\"edges_ingested\":{}}}",
        e.epoch,
        e.loss.to_bits(),
        e.metric.to_bits(),
        e.overlap.to_bits(),
        e.epoch_time.as_nanos(),
        e.sample_time.as_nanos(),
        e.compute_time.as_nanos(),
        e.io_time.as_nanos(),
        e.io_wait_time.as_nanos(),
        e.stall_time.as_nanos(),
        e.writeback_time.as_nanos(),
        e.io_bytes_read,
        e.io_bytes_written,
        e.partition_loads,
        e.examples,
        e.nodes_sampled,
        e.edges_sampled,
        e.io_retries,
        e.faults_injected,
        e.recoveries,
        e.buffer_hits,
        e.buffer_misses,
        e.buffer_evictions,
        e.throttle_wait_time.as_nanos(),
        e.edges_ingested,
    )
}

fn epoch_from_json(j: &Json) -> Result<EpochReport> {
    let ns = |name: &str| -> Result<Duration> { Ok(Duration::from_nanos(j.u64_field(name)?)) };
    Ok(EpochReport {
        epoch: j.u64_field("epoch")? as usize,
        loss: f64::from_bits(j.field("loss_bits")?.as_hex_u64()?),
        metric: f64::from_bits(j.field("metric_bits")?.as_hex_u64()?),
        overlap: f64::from_bits(j.field("overlap_bits")?.as_hex_u64()?),
        epoch_time: ns("epoch_time_ns")?,
        sample_time: ns("sample_time_ns")?,
        compute_time: ns("compute_time_ns")?,
        io_time: ns("io_time_ns")?,
        io_wait_time: ns("io_wait_time_ns")?,
        stall_time: ns("stall_time_ns")?,
        writeback_time: ns("writeback_time_ns")?,
        io_bytes_read: j.u64_field("io_bytes_read")?,
        io_bytes_written: j.u64_field("io_bytes_written")?,
        partition_loads: j.u64_field("partition_loads")? as usize,
        examples: j.u64_field("examples")? as usize,
        nodes_sampled: j.u64_field("nodes_sampled")? as usize,
        edges_sampled: j.u64_field("edges_sampled")? as usize,
        // Robustness counters were added after format version 1 shipped;
        // manifests written before then simply report zero for them.
        io_retries: j.u64_field("io_retries").unwrap_or(0),
        faults_injected: j.u64_field("faults_injected").unwrap_or(0),
        recoveries: j.u64_field("recoveries").unwrap_or(0) as usize,
        // Buffer/throttle observability fields likewise postdate version 1.
        buffer_hits: j.u64_field("buffer_hits").unwrap_or(0),
        buffer_misses: j.u64_field("buffer_misses").unwrap_or(0),
        buffer_evictions: j.u64_field("buffer_evictions").unwrap_or(0),
        throttle_wait_time: Duration::from_nanos(j.u64_field("throttle_wait_time_ns").unwrap_or(0)),
        // Streaming ingest also postdates version 1; frozen-dataset manifests
        // simply report zero edges ingested.
        edges_ingested: j.u64_field("edges_ingested").unwrap_or(0),
    })
}

// Finite floats round-trip exactly through Rust's shortest-display formatting
// (`format!("{v}")` emits the shortest string that parses back to the same
// bits), so config floats — always finite — are stored as plain JSON numbers.

fn model_to_json(m: &ModelConfig) -> String {
    let encoder = match m.encoder {
        crate::config::EncoderKind::GraphSage => "GraphSage",
        crate::config::EncoderKind::Gat => "Gat",
        crate::config::EncoderKind::Gcn => "Gcn",
        crate::config::EncoderKind::None => "None",
    };
    let direction = match m.direction {
        SamplingDirection::Incoming => "Incoming",
        SamplingDirection::Outgoing => "Outgoing",
        SamplingDirection::Both => "Both",
    };
    let fanouts: Vec<String> = m.fanouts.iter().map(|f| f.to_string()).collect();
    format!(
        "{{\"encoder\":\"{encoder}\",\"num_layers\":{},\"hidden_dim\":{},\"output_dim\":{},\
         \"input_dim\":{},\"fanouts\":[{}],\"direction\":\"{direction}\",\
         \"learning_rate\":{},\"embedding_learning_rate\":{}}}",
        m.num_layers,
        m.hidden_dim,
        m.output_dim,
        m.input_dim,
        fanouts.join(","),
        m.learning_rate,
        m.embedding_learning_rate,
    )
}

fn model_from_json(j: &Json) -> Result<ModelConfig> {
    let encoder = match j.str_field("encoder")? {
        "GraphSage" => crate::config::EncoderKind::GraphSage,
        "Gat" => crate::config::EncoderKind::Gat,
        "Gcn" => crate::config::EncoderKind::Gcn,
        "None" => crate::config::EncoderKind::None,
        other => return Err(corrupt(format!("unknown encoder kind {other:?}"))),
    };
    let direction = match j.str_field("direction")? {
        "Incoming" => SamplingDirection::Incoming,
        "Outgoing" => SamplingDirection::Outgoing,
        "Both" => SamplingDirection::Both,
        other => return Err(corrupt(format!("unknown sampling direction {other:?}"))),
    };
    let fanouts = j
        .field("fanouts")?
        .as_array()?
        .iter()
        .map(|f| f.as_u64().map(|v| v as usize))
        .collect::<Result<Vec<usize>>>()?;
    Ok(ModelConfig {
        encoder,
        num_layers: j.u64_field("num_layers")? as usize,
        hidden_dim: j.u64_field("hidden_dim")? as usize,
        output_dim: j.u64_field("output_dim")? as usize,
        input_dim: j.u64_field("input_dim")? as usize,
        fanouts,
        direction,
        learning_rate: j.f64_field("learning_rate")? as f32,
        embedding_learning_rate: j.f64_field("embedding_learning_rate")? as f32,
    })
}

fn emulated_device_to_json(io: Option<&IoCostModel>) -> String {
    match io {
        None => "null".to_string(),
        Some(io) => format!(
            "{{\"bandwidth_bytes_per_sec\":{},\"iops\":{},\"block_size\":{}}}",
            io.bandwidth_bytes_per_sec, io.iops, io.block_size,
        ),
    }
}

fn emulated_device_from_json(j: &Json) -> Result<Option<IoCostModel>> {
    match j {
        Json::Null => Ok(None),
        obj => Ok(Some(IoCostModel {
            bandwidth_bytes_per_sec: obj.f64_field("bandwidth_bytes_per_sec")?,
            iops: obj.f64_field("iops")?,
            block_size: obj.u64_field("block_size")?,
        })),
    }
}

fn train_to_json(t: &TrainConfig) -> String {
    format!(
        "{{\"batch_size\":{},\"num_negatives\":{},\"eval_negatives\":{},\"epochs\":{},\
         \"seed\":{},\"max_batches_per_epoch\":{}}}",
        t.batch_size, t.num_negatives, t.eval_negatives, t.epochs, t.seed, t.max_batches_per_epoch,
    )
}

fn train_from_json(j: &Json) -> Result<TrainConfig> {
    Ok(TrainConfig {
        batch_size: j.u64_field("batch_size")? as usize,
        num_negatives: j.u64_field("num_negatives")? as usize,
        eval_negatives: j.u64_field("eval_negatives")? as usize,
        epochs: j.u64_field("epochs")? as usize,
        seed: j.u64_field("seed")?,
        max_batches_per_epoch: j.u64_field("max_batches_per_epoch")? as usize,
    })
}

fn storage_to_json(s: &StorageKind) -> String {
    match s {
        StorageKind::InMemory => "{\"kind\":\"memory\"}".to_string(),
        StorageKind::Disk(d) => {
            let policy = match d.policy {
                PolicyKind::Comet => "Comet",
                PolicyKind::Beta => "Beta",
                PolicyKind::NodeCache => "NodeCache",
            };
            format!(
                "{{\"kind\":\"disk\",\"policy\":\"{policy}\",\"num_partitions\":{},\
                 \"buffer_capacity\":{},\"num_logical\":{}}}",
                d.num_partitions, d.buffer_capacity, d.num_logical,
            )
        }
    }
}

fn storage_from_json(j: &Json) -> Result<StorageKind> {
    match j.str_field("kind")? {
        "memory" => Ok(StorageKind::InMemory),
        "disk" => {
            let policy = match j.str_field("policy")? {
                "Comet" => PolicyKind::Comet,
                "Beta" => PolicyKind::Beta,
                "NodeCache" => PolicyKind::NodeCache,
                other => return Err(corrupt(format!("unknown policy kind {other:?}"))),
            };
            Ok(StorageKind::Disk(DiskConfig {
                policy,
                num_partitions: j.u64_field("num_partitions")? as u32,
                buffer_capacity: j.u64_field("buffer_capacity")? as usize,
                num_logical: j.u64_field("num_logical")? as u32,
            }))
        }
        other => Err(corrupt(format!("unknown storage kind {other:?}"))),
    }
}

fn pipeline_to_json(p: &PipelineConfig) -> String {
    format!(
        "{{\"enabled\":{},\"num_sampling_workers\":{},\"queue_depth\":{},\
         \"prefetch_depth\":{},\"writeback_depth\":{},\"synchronous_writeback\":{}}}",
        p.enabled,
        p.num_sampling_workers,
        p.queue_depth,
        p.prefetch_depth,
        p.writeback_depth,
        p.synchronous_writeback,
    )
}

fn pipeline_from_json(j: &Json) -> Result<PipelineConfig> {
    Ok(PipelineConfig {
        enabled: j.bool_field("enabled")?,
        num_sampling_workers: j.u64_field("num_sampling_workers")? as usize,
        queue_depth: j.u64_field("queue_depth")? as usize,
        prefetch_depth: j.u64_field("prefetch_depth")? as usize,
        writeback_depth: j.u64_field("writeback_depth")? as usize,
        synchronous_writeback: j.bool_field("synchronous_writeback")?,
    })
}

fn stream_to_json(s: Option<&StreamState>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"seed\":{},\"batch_size\":{},\"batches_applied\":{},\"edges_ingested\":{}}}",
            s.seed, s.batch_size, s.batches_applied, s.edges_ingested,
        ),
    }
}

fn stream_from_json(j: &Json) -> Result<Option<StreamState>> {
    match j {
        Json::Null => Ok(None),
        obj => Ok(Some(StreamState {
            seed: obj.u64_field("seed")?,
            batch_size: obj.u64_field("batch_size")? as usize,
            batches_applied: obj.u64_field("batches_applied")?,
            edges_ingested: obj.u64_field("edges_ingested")?,
        })),
    }
}

fn dataset_to_json(spec: &DatasetSpec, seed: u64) -> String {
    let task = match spec.task {
        DatasetTask::LinkPrediction => "LinkPrediction",
        DatasetTask::NodeClassification => "NodeClassification",
    };
    let classes = match spec.num_classes {
        Some(c) => c.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"name\":\"{}\",\"num_nodes\":{},\"num_edges\":{},\"feat_dim\":{},\
         \"num_relations\":{},\"num_classes\":{classes},\"train_fraction\":{},\
         \"task\":\"{task}\",\"degree_exponent\":{},\"fixed_features\":{},\"seed\":{seed}}}",
        json_escape(&spec.name),
        spec.num_nodes,
        spec.num_edges,
        spec.feat_dim,
        spec.num_relations,
        spec.train_fraction,
        spec.degree_exponent,
        spec.fixed_features,
    )
}

fn dataset_from_json(j: &Json) -> Result<DatasetSpec> {
    let task = match j.str_field("task")? {
        "LinkPrediction" => DatasetTask::LinkPrediction,
        "NodeClassification" => DatasetTask::NodeClassification,
        other => return Err(corrupt(format!("unknown dataset task {other:?}"))),
    };
    let num_classes = match j.field("num_classes")? {
        Json::Null => None,
        v => Some(v.as_u64()? as usize),
    };
    Ok(DatasetSpec {
        name: j.str_field("name")?.to_string(),
        num_nodes: j.u64_field("num_nodes")?,
        num_edges: j.u64_field("num_edges")?,
        feat_dim: j.u64_field("feat_dim")? as usize,
        num_relations: j.u64_field("num_relations")? as u32,
        num_classes,
        train_fraction: j.f64_field("train_fraction")?,
        task,
        degree_exponent: j.f64_field("degree_exponent")?,
        fixed_features: j.bool_field("fixed_features")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::ScaledDataset;

    fn temp_root(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "marius-ckpt-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_dict() -> StateDict {
        let mut dict = StateDict::new();
        dict.push_f32("model.w", 2, 3, &[1.0, -2.5, 3.25, 0.0, 0.5, 9.75]);
        dict.push_u64("trainer.order", &[3, 1, 4, 1, 5]);
        dict
    }

    #[allow(clippy::too_many_arguments)]
    fn sample_snapshot<'a>(
        data: &'a ScaledDataset,
        model: &'a ModelConfig,
        train: &'a TrainConfig,
        storage: &'a StorageKind,
        pipeline: &'a PipelineConfig,
        dict: &'a StateDict,
        report: &'a ExperimentReport,
        epochs_completed: usize,
    ) -> CheckpointSnapshot<'a> {
        CheckpointSnapshot {
            task_slug: "lp",
            epochs_completed,
            every: 1,
            eval_every: 1,
            rng_state: [1, 2, 3, u64::MAX],
            emulated_device: None,
            model,
            train,
            storage,
            pipeline,
            data,
            stream: None,
            state: dict,
            store: None,
            report,
        }
    }

    #[test]
    fn state_dict_roundtrips_through_encode_decode() {
        let dict = sample_dict();
        let (bytes, entries) = dict.encode();
        let back = StateDict::decode(&entries, &bytes).unwrap();
        assert_eq!(dict, back);
        assert_eq!(back.require_f32("model.w", 2, 3).unwrap()[5], 9.75);
        assert_eq!(
            back.require_u64("trainer.order").unwrap(),
            vec![3, 1, 4, 1, 5]
        );
    }

    #[test]
    fn decode_rejects_corruption_truncation_and_shape_lies() {
        let dict = sample_dict();
        let (mut bytes, entries) = dict.encode();
        // Flip one payload byte: checksum mismatch.
        bytes[5] ^= 0xff;
        let err = StateDict::decode(&entries, &bytes).unwrap_err();
        assert!(format!("{err}").contains("checksum"), "{err}");
        // Truncate the buffer: out-of-range blob.
        let (bytes, entries) = dict.encode();
        let err = StateDict::decode(&entries, &bytes[..bytes.len() - 1]).unwrap_err();
        assert!(format!("{err}").contains("past the end"), "{err}");
        // Lie about the shape: length/shape mismatch.
        let mut bad = entries.clone();
        bad[0].rows = 7;
        let err = StateDict::decode(&bad, &bytes).unwrap_err();
        assert!(format!("{err}").contains("shape"), "{err}");
    }

    #[test]
    fn state_dict_lookup_errors_name_missing_and_dtype() {
        let dict = sample_dict();
        assert!(dict.require_f32("nope", 1, 1).is_err());
        assert!(dict.require_f32("model.w", 3, 2).is_err());
        assert!(dict.get("trainer.order").unwrap().as_f32().is_err());
        assert!(dict.get("model.w").unwrap().as_u64().is_err());
    }

    #[test]
    fn versioned_write_open_roundtrip_and_latest_pointer() {
        let root = temp_root("roundtrip");
        let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.002), 7);
        let model = ModelConfig::paper_distmult(8);
        let mut train = TrainConfig::quick(4, 9);
        train.batch_size = 64;
        let storage = StorageKind::Disk(DiskConfig::comet(8, 4));
        let pipeline = PipelineConfig::with_workers(2);
        let dict = sample_dict();
        let mut report = ExperimentReport::new("test", "data");
        report.epochs.push(EpochReport {
            epoch: 0,
            loss: 2.25,
            metric: f64::NAN,
            examples: 42,
            epoch_time: Duration::from_nanos(123_456_789),
            ..Default::default()
        });

        let snap = sample_snapshot(
            &data, &model, &train, &storage, &pipeline, &dict, &report, 1,
        );
        write_versioned(&root, &snap).unwrap();

        let ckpt = Checkpoint::open(&root).unwrap();
        assert_eq!(ckpt.task_slug, "lp");
        assert_eq!(ckpt.epochs_completed, 1);
        assert_eq!(ckpt.rng_state, [1, 2, 3, u64::MAX]);
        assert_eq!(ckpt.train.epochs, 4);
        assert_eq!(ckpt.train.batch_size, 64);
        assert_eq!(ckpt.model.input_dim, 8);
        assert!(matches!(ckpt.storage, StorageKind::Disk(ref d) if d.num_partitions == 8));
        assert!(ckpt.pipeline.enabled);
        assert_eq!(ckpt.dataset_spec, data.spec);
        assert_eq!(ckpt.dataset_seed, 7);
        assert_eq!(ckpt.state, dict);
        assert!(!ckpt.has_store_snapshot);
        assert_eq!(ckpt.prior_epochs.len(), 1);
        // Bit-exact epoch fields, including the NaN metric.
        assert_eq!(ckpt.prior_epochs[0].loss.to_bits(), 2.25f64.to_bits());
        assert!(ckpt.prior_epochs[0].metric.is_nan());
        assert_eq!(
            ckpt.prior_epochs[0].epoch_time,
            Duration::from_nanos(123_456_789)
        );

        let resume = ckpt.resume_state();
        assert_eq!(resume.start_epoch, 1);
        assert!(resume.store_snapshot.is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn newer_versions_win_and_old_ones_are_pruned() {
        let root = temp_root("prune");
        let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.002), 7);
        let model = ModelConfig::paper_distmult(8);
        let train = TrainConfig::quick(4, 9);
        let storage = StorageKind::InMemory;
        let pipeline = PipelineConfig::disabled();
        let dict = sample_dict();
        let report = ExperimentReport::new("t", "d");
        for completed in 1..=3 {
            let snap = sample_snapshot(
                &data, &model, &train, &storage, &pipeline, &dict, &report, completed,
            );
            write_versioned(&root, &snap).unwrap();
        }
        let ckpt = Checkpoint::open(&root).unwrap();
        assert_eq!(ckpt.epochs_completed, 3);
        // Newest two survive; epoch-000001 is pruned.
        assert!(root.join("epoch-000003").is_dir());
        assert!(root.join("epoch-000002").is_dir());
        assert!(!root.join("epoch-000001").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn emulated_device_round_trips_through_the_manifest() {
        let root = temp_root("emulated");
        let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.002), 7);
        let model = ModelConfig::paper_distmult(8);
        let train = TrainConfig::quick(2, 9);
        let storage = StorageKind::InMemory;
        let pipeline = PipelineConfig::disabled();
        let dict = sample_dict();
        let report = ExperimentReport::new("t", "d");
        let io = IoCostModel {
            bandwidth_bytes_per_sec: 1.25e9,
            iops: 10_000.0,
            block_size: 131_072,
        };
        let mut snap = sample_snapshot(
            &data, &model, &train, &storage, &pipeline, &dict, &report, 1,
        );
        snap.emulated_device = Some(&io);
        write_versioned(&root, &snap).unwrap();
        let ckpt = Checkpoint::open(&root).unwrap();
        let restored = ckpt.emulated_device.expect("device persisted");
        assert_eq!(
            restored.bandwidth_bytes_per_sec.to_bits(),
            io.bandwidth_bytes_per_sec.to_bits()
        );
        assert_eq!(restored.iops.to_bits(), io.iops.to_bits());
        assert_eq!(restored.block_size, io.block_size);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stream_state_round_trips_and_defaults_to_none() {
        let root = temp_root("stream-state");
        let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.002), 7);
        let model = ModelConfig::paper_distmult(8);
        let train = TrainConfig::quick(2, 9);
        let storage = StorageKind::InMemory;
        let pipeline = PipelineConfig::disabled();
        let dict = sample_dict();
        let mut report = ExperimentReport::new("t", "d");
        report.epochs.push(EpochReport {
            edges_ingested: 96,
            ..Default::default()
        });
        let mut snap = sample_snapshot(
            &data, &model, &train, &storage, &pipeline, &dict, &report, 1,
        );
        // Without a stream the manifest emits null and parses back to None.
        write_versioned(&root, &snap).unwrap();
        let ckpt = Checkpoint::open(&root).unwrap();
        assert!(ckpt.stream.is_none());
        // With a stream, every cursor field round-trips bit-exactly, and the
        // per-epoch edges_ingested count survives the manifest.
        snap.stream = Some(StreamState {
            seed: 0xfeed,
            batch_size: 32,
            batches_applied: 3,
            edges_ingested: 96,
        });
        snap.epochs_completed = 2;
        write_versioned(&root, &snap).unwrap();
        let ckpt = Checkpoint::open(&root).unwrap();
        let stream = ckpt.stream.expect("stream cursor persisted");
        assert_eq!(stream.seed, 0xfeed);
        assert_eq!(stream.batch_size, 32);
        assert_eq!(stream.batches_applied, 3);
        assert_eq!(stream.edges_ingested, 96);
        assert_eq!(ckpt.prior_epochs[0].edges_ingested, 96);
        // A manifest with no "stream" field at all (pre-streaming format)
        // also parses back to None.
        let dir = ckpt.dir.clone();
        let manifest = fs::read_to_string(dir.join("manifest.json")).unwrap();
        let stripped = manifest.replace(
            "\"stream\":{\"seed\":65261,\"batch_size\":32,\"batches_applied\":3,\"edges_ingested\":96},",
            "",
        );
        assert_ne!(manifest, stripped, "stream field not found to strip");
        fs::write(dir.join("manifest.json"), stripped).unwrap();
        let ckpt = Checkpoint::open(&root).unwrap();
        assert!(ckpt.stream.is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_falls_back_to_the_newest_complete_version_when_latest_dangles() {
        let root = temp_root("dangle");
        let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.002), 7);
        let model = ModelConfig::paper_distmult(8);
        let train = TrainConfig::quick(4, 9);
        let storage = StorageKind::InMemory;
        let pipeline = PipelineConfig::disabled();
        let dict = sample_dict();
        let report = ExperimentReport::new("t", "d");
        for completed in 1..=2 {
            let snap = sample_snapshot(
                &data, &model, &train, &storage, &pipeline, &dict, &report, completed,
            );
            write_versioned(&root, &snap).unwrap();
        }
        // A crash in write_versioned's rename-aside window: LATEST names a
        // version that no longer exists. Open resolves the newest complete
        // one instead of failing.
        fs::remove_dir_all(root.join("epoch-000002")).unwrap();
        assert_eq!(
            fs::read_to_string(root.join("LATEST")).unwrap(),
            "epoch-000002"
        );
        let ckpt = Checkpoint::open(&root).unwrap();
        assert_eq!(ckpt.epochs_completed, 1);
        // With nothing loadable left, the LATEST error is reported.
        fs::remove_dir_all(root.join("epoch-000001")).unwrap();
        assert!(Checkpoint::open(&root).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_of_the_named_version_fails_loudly_instead_of_rewinding() {
        let root = temp_root("no-silent-rewind");
        let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.002), 7);
        let model = ModelConfig::paper_distmult(8);
        let train = TrainConfig::quick(4, 9);
        let storage = StorageKind::InMemory;
        let pipeline = PipelineConfig::disabled();
        let dict = sample_dict();
        let report = ExperimentReport::new("t", "d");
        for completed in 1..=2 {
            let snap = sample_snapshot(
                &data, &model, &train, &storage, &pipeline, &dict, &report, completed,
            );
            write_versioned(&root, &snap).unwrap();
        }
        // Bit rot in the newest version: open must NOT silently fall back to
        // epoch-000001 (that would rewind training progress unnoticed).
        let bin_path = root.join("epoch-000002/state.bin");
        let mut bin = fs::read(&bin_path).unwrap();
        bin[0] ^= 0xff;
        fs::write(&bin_path, bin).unwrap();
        let err = Checkpoint::open(&root).unwrap_err();
        assert!(format!("{err}").contains("checksum"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn re_checkpointing_the_same_epoch_replaces_the_version() {
        // A run restarted from scratch over an old checkpoint directory
        // rewrites the same version name; the newer bytes win and the old
        // version is never deleted while LATEST still names it (it is
        // renamed aside and dropped after the swap).
        let root = temp_root("replace");
        let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.002), 7);
        let model = ModelConfig::paper_distmult(8);
        let train = TrainConfig::quick(2, 9);
        let storage = StorageKind::InMemory;
        let pipeline = PipelineConfig::disabled();
        let dict = sample_dict();
        let report = ExperimentReport::new("t", "d");
        let mut snap = sample_snapshot(
            &data, &model, &train, &storage, &pipeline, &dict, &report, 1,
        );
        write_versioned(&root, &snap).unwrap();
        snap.rng_state = [9, 9, 9, 9];
        write_versioned(&root, &snap).unwrap();
        let ckpt = Checkpoint::open(&root).unwrap();
        assert_eq!(ckpt.rng_state, [9, 9, 9, 9]);
        assert!(!root.join("epoch-000001.old.tmp").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_staging_dirs_are_invisible_to_open() {
        let root = temp_root("torn");
        let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.002), 7);
        let model = ModelConfig::paper_distmult(8);
        let train = TrainConfig::quick(4, 9);
        let storage = StorageKind::InMemory;
        let pipeline = PipelineConfig::disabled();
        let dict = sample_dict();
        let report = ExperimentReport::new("t", "d");
        let snap = sample_snapshot(
            &data, &model, &train, &storage, &pipeline, &dict, &report, 2,
        );
        write_versioned(&root, &snap).unwrap();
        // Simulate a crash mid-write of the *next* version: a partial staging
        // dir with a truncated manifest. LATEST still names epoch-000002.
        let staging = root.join("epoch-000003.tmp");
        fs::create_dir_all(&staging).unwrap();
        fs::write(staging.join("manifest.json"), "{\"format\":\"marius-ch").unwrap();
        let ckpt = Checkpoint::open(&root).unwrap();
        assert_eq!(ckpt.epochs_completed, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_rejects_missing_roots_and_truncated_manifests() {
        let root = temp_root("reject");
        let err = Checkpoint::open(&root).unwrap_err();
        assert!(format!("{err}").contains("no checkpoint"), "{err}");
        // A LATEST pointing at a version whose manifest is truncated.
        fs::create_dir_all(root.join("epoch-000001")).unwrap();
        fs::write(root.join("LATEST"), "epoch-000001").unwrap();
        fs::write(root.join("epoch-000001/manifest.json"), "{\"format\":").unwrap();
        let err = Checkpoint::open(&root).unwrap_err();
        assert!(format!("{err}").contains("invalid"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn embedding_table_persists_values_and_optimizer_state() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut table = EmbeddingTable::new(6, 4, 0.1, &mut rng);
        table.apply_sparse_update(&[2], &marius_tensor::Tensor::ones(1, 4));
        let mut dict = StateDict::new();
        table.save_state(&mut dict);
        let mut fresh = EmbeddingTable::new(6, 4, 0.1, &mut rng);
        fresh.load_state(&dict).unwrap();
        assert_eq!(fresh.raw_values(), table.raw_values());
        assert_eq!(fresh.raw_state(), table.raw_state());
        // Dimension mismatch is rejected.
        let mut wrong = EmbeddingTable::new(6, 3, 0.1, &mut rng);
        assert!(wrong.load_state(&dict).is_err());
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
