//! Abstraction over where base representations live.
//!
//! The processing layer (models, trainers) is agnostic to whether the base
//! representations of nodes come from an in-memory embedding table, a fixed
//! feature matrix, or the out-of-core partition buffer — it only needs to gather
//! rows for the nodes in a DENSE sample and, for learnable representations, write
//! sparse gradient updates back (Figure 2 steps 4 and 6).

use crate::checkpoint::{Persist, StateDict};
use marius_gnn::EmbeddingTable;
use marius_graph::datasets::FeatureMatrix;
use marius_graph::NodeId;
use marius_storage::{PartitionBuffer, Result};
use marius_tensor::Tensor;

/// A source of per-node base representations.
pub trait RepresentationSource {
    /// Representation dimension.
    fn dim(&self) -> usize;

    /// Gathers rows for `nodes` in order.
    fn gather(&self, nodes: &[NodeId]) -> Tensor;

    /// Applies a sparse gradient update (`grads` row `i` belongs to `nodes[i]`).
    /// No-op for fixed features.
    fn apply_update(&mut self, nodes: &[NodeId], grads: &Tensor);

    /// Whether the representations are learnable.
    fn learnable(&self) -> bool;

    /// Appends the source's durable state to a checkpoint dictionary. Sources
    /// whose contents are re-derivable from the dataset (fixed features) or
    /// persisted elsewhere (the partition buffer's store is snapshotted
    /// file-by-file) contribute nothing — the default.
    fn save_state(&self, _dict: &mut StateDict) {}

    /// Restores the source's durable state from a checkpoint dictionary.
    /// No-op by default, mirroring [`RepresentationSource::save_state`].
    fn load_state(&mut self, _dict: &StateDict) -> Result<()> {
        Ok(())
    }
}

/// In-memory learnable embeddings backed by an [`EmbeddingTable`].
#[derive(Debug)]
pub struct TableSource {
    table: EmbeddingTable,
}

impl TableSource {
    /// Wraps an embedding table.
    pub fn new(table: EmbeddingTable) -> Self {
        TableSource { table }
    }

    /// Returns the underlying table (for evaluation-time full-graph access).
    pub fn table(&self) -> &EmbeddingTable {
        &self.table
    }
}

impl RepresentationSource for TableSource {
    fn dim(&self) -> usize {
        self.table.dim()
    }

    fn gather(&self, nodes: &[NodeId]) -> Tensor {
        self.table.gather(nodes)
    }

    fn apply_update(&mut self, nodes: &[NodeId], grads: &Tensor) {
        self.table.apply_sparse_update(nodes, grads);
    }

    fn learnable(&self) -> bool {
        true
    }

    fn save_state(&self, dict: &mut StateDict) {
        self.table.save_state(dict);
    }

    fn load_state(&mut self, dict: &StateDict) -> Result<()> {
        self.table.load_state(dict)
    }
}

/// Fixed input features (node classification): gathers rows, ignores updates.
#[derive(Debug)]
pub struct FixedFeatureSource {
    features: FeatureMatrix,
}

impl FixedFeatureSource {
    /// Wraps a feature matrix.
    pub fn new(features: FeatureMatrix) -> Self {
        FixedFeatureSource { features }
    }
}

impl RepresentationSource for FixedFeatureSource {
    fn dim(&self) -> usize {
        self.features.dim()
    }

    fn gather(&self, nodes: &[NodeId]) -> Tensor {
        let mut out = Tensor::zeros(nodes.len(), self.features.dim());
        for (i, &n) in nodes.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.features.row(n));
        }
        out
    }

    fn apply_update(&mut self, _nodes: &[NodeId], _grads: &Tensor) {}

    fn learnable(&self) -> bool {
        false
    }
}

impl RepresentationSource for PartitionBuffer {
    fn dim(&self) -> usize {
        PartitionBuffer::dim(self)
    }

    fn gather(&self, nodes: &[NodeId]) -> Tensor {
        PartitionBuffer::gather(self, nodes)
            .expect("mini batches only reference nodes resident in the partition buffer")
    }

    fn apply_update(&mut self, nodes: &[NodeId], grads: &Tensor) {
        PartitionBuffer::apply_update(self, nodes, grads)
            .expect("mini batches only reference nodes resident in the partition buffer");
    }

    fn learnable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_source_gathers_and_updates() {
        let mut rng = StdRng::seed_from_u64(1);
        let table = EmbeddingTable::new(10, 4, 0.1, &mut rng);
        let mut source = TableSource::new(table);
        assert!(source.learnable());
        assert_eq!(source.dim(), 4);
        let before = source.gather(&[3]);
        source.apply_update(&[3], &Tensor::ones(1, 4));
        let after = source.gather(&[3]);
        assert_ne!(before, after);
    }

    #[test]
    fn table_source_state_roundtrips_through_a_state_dict() {
        let mut rng = StdRng::seed_from_u64(2);
        let table = EmbeddingTable::new(8, 3, 0.1, &mut rng);
        let mut source = TableSource::new(table);
        source.apply_update(&[1, 4], &Tensor::ones(2, 3));
        let mut dict = StateDict::new();
        source.save_state(&mut dict);
        let fresh_table = EmbeddingTable::new(8, 3, 0.1, &mut rng);
        let mut fresh = TableSource::new(fresh_table);
        fresh.load_state(&dict).unwrap();
        assert_eq!(fresh.gather(&[0, 1, 4, 7]), source.gather(&[0, 1, 4, 7]));
        assert_eq!(fresh.table().raw_state(), source.table().raw_state());
    }

    #[test]
    fn fixed_feature_source_ignores_updates() {
        let mut features = FeatureMatrix::zeros(5, 3);
        features.row_mut(2).copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut source = FixedFeatureSource::new(features);
        assert!(!source.learnable());
        assert_eq!(source.dim(), 3);
        let before = source.gather(&[2, 0]);
        assert_eq!(before.row(0), &[1.0, 2.0, 3.0]);
        source.apply_update(&[2], &Tensor::ones(1, 3));
        assert_eq!(source.gather(&[2]), before.slice_rows(0, 1).unwrap());
    }
}
