//! The byte-budgeted hot-partition read cache behind out-of-core serving.
//!
//! Admission control reuses the training-side replacement-policy machinery:
//! the checkpoint's COMET/BETA policy is asked for an epoch plan, and the
//! partitions it would schedule most often (its hot set under the training
//! workload) are the only ones the cache agrees to hold. Partitions are
//! admitted in heat order while they fit the byte budget, so the cache can
//! never exceed its budget and never needs to evict — cold partitions are
//! read through on every touch instead. Every outcome records `server.cache.*`
//! telemetry.
//!
//! # Verified reads and the quarantine degraded mode
//!
//! Every block entering the cache is structurally verified against the
//! replayed partition assignment
//! ([`PartitionStore::read_partition_expect`]) and fingerprinted with
//! [`marius_storage::partition_digest`]. Cache hits re-verify the fingerprint
//! before handing the block out: a cached copy whose bits no longer match —
//! memory corruption, a buggy in-place mutation — is **quarantined** (the slot
//! is dropped and the partition permanently bypasses the cache) and the query
//! transparently re-reads the verified bytes from disk instead of failing or,
//! worse, serving corrupt embeddings. Quarantines count into
//! `server.cache.quarantine` and are visible through `Server::health`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use marius_graph::PartitionId;
use marius_storage::{partition_digest, PartitionStore, Result};
use marius_telemetry::{Counter, Telemetry};

/// A resident value block plus the fingerprint it carried at insertion.
struct CachedBlock {
    block: Arc<Vec<f32>>,
    digest: u64,
}

/// Shared read cache over a checkpoint's immutable partition snapshot.
pub(crate) struct ReadCache {
    /// Per-partition admission flag, fixed at construction.
    admitted: Vec<bool>,
    /// Per-partition quarantine flag: set when a cached copy fails its
    /// fingerprint check, after which the partition reads through forever.
    quarantined: Vec<AtomicBool>,
    /// Resident, fingerprinted value blocks for admitted partitions.
    slots: RwLock<HashMap<PartitionId, CachedBlock>>,
    /// Bytes the admitted set occupies once fully resident.
    admitted_bytes: u64,
    budget_bytes: u64,
    hits: Counter,
    misses: Counter,
    bypasses: Counter,
    quarantines: Counter,
}

impl ReadCache {
    /// Builds the cache by admitting partitions in `heat_order` (hottest
    /// first) while their value blocks fit in `budget_bytes`. At least one
    /// partition is always admitted so a tiny budget still caches something.
    pub(crate) fn new(
        heat_order: &[PartitionId],
        partition_rows: &[usize],
        dim: usize,
        budget_bytes: u64,
        telemetry: &Telemetry,
    ) -> Self {
        let mut admitted = vec![false; partition_rows.len()];
        let mut admitted_bytes = 0u64;
        for (rank, &p) in heat_order.iter().enumerate() {
            let bytes = (partition_rows[p as usize] * dim * std::mem::size_of::<f32>()) as u64;
            if rank > 0 && admitted_bytes + bytes > budget_bytes {
                continue;
            }
            admitted[p as usize] = true;
            admitted_bytes += bytes;
        }
        telemetry
            .gauge("server.cache.budget_bytes")
            .set(budget_bytes.min(i64::MAX as u64) as i64);
        telemetry
            .gauge("server.cache.admitted_bytes")
            .set(admitted_bytes.min(i64::MAX as u64) as i64);
        telemetry
            .gauge("server.cache.admitted_partitions")
            .set(admitted.iter().filter(|&&a| a).count() as i64);
        ReadCache {
            quarantined: admitted.iter().map(|_| AtomicBool::new(false)).collect(),
            admitted,
            slots: RwLock::new(HashMap::new()),
            admitted_bytes,
            budget_bytes,
            hits: telemetry.counter("server.cache.hit"),
            misses: telemetry.counter("server.cache.miss"),
            bypasses: telemetry.counter("server.cache.bypass"),
            quarantines: telemetry.counter("server.cache.quarantine"),
        }
    }

    /// Fetches partition `p`'s value block, through the cache when `p` is
    /// admitted and not quarantined. `expected_rows` cross-checks the file
    /// against the replayed partition assignment, so a truncated or
    /// mismatched snapshot surfaces as a typed error instead of silently
    /// serving wrong embeddings; cache hits additionally re-verify the
    /// block's fingerprint, degrading to a quarantined read-through when the
    /// cached copy has been corrupted (see the module docs).
    pub(crate) fn fetch(
        &self,
        store: &PartitionStore,
        p: PartitionId,
        expected_rows: usize,
        dim: usize,
    ) -> Result<Arc<Vec<f32>>> {
        if !self.admitted[p as usize] || self.quarantined[p as usize].load(Ordering::Acquire) {
            self.bypasses.incr();
            return read_values(store, p, expected_rows, dim);
        }
        if let Some((block, digest)) = {
            let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
            slots.get(&p).map(|c| (Arc::clone(&c.block), c.digest))
        } {
            if partition_digest(&block) == digest {
                self.hits.incr();
                return Ok(block);
            }
            // Degraded mode: the cached copy no longer matches the
            // fingerprint it carried at insertion. Quarantine the partition
            // (drop the slot, bypass the cache from now on) and serve this
            // query from a fresh verified disk read.
            self.quarantine(p);
            return read_values(store, p, expected_rows, dim);
        }
        // Miss: read and verify outside any lock, then insert. Two threads
        // racing on the same cold partition both read and both count a miss;
        // the first insert wins and the blocks are identical bytes either way.
        self.misses.incr();
        let block = read_values(store, p, expected_rows, dim)?;
        let digest = partition_digest(&block);
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        let cached = slots.entry(p).or_insert(CachedBlock { block, digest });
        Ok(Arc::clone(&cached.block))
    }

    /// Marks `p` quarantined and drops its slot. Idempotent; counts once.
    fn quarantine(&self, p: PartitionId) {
        if !self.quarantined[p as usize].swap(true, Ordering::AcqRel) {
            self.quarantines.incr();
        }
        self.slots
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&p);
    }

    /// Number of partitions the admission set holds.
    pub(crate) fn admitted_partitions(&self) -> usize {
        self.admitted.iter().filter(|&&a| a).count()
    }

    /// Number of partitions quarantined after failing fingerprint checks.
    pub(crate) fn quarantined_partitions(&self) -> usize {
        self.quarantined
            .iter()
            .filter(|q| q.load(Ordering::Acquire))
            .count()
    }

    /// Bytes the admitted set occupies once fully resident (always within
    /// the budget).
    pub(crate) fn admitted_bytes(&self) -> u64 {
        self.admitted_bytes
    }

    /// The configured byte budget.
    pub(crate) fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Test hook: flips one bit of `p`'s cached copy in place, simulating
    /// in-memory corruption of a resident block. Returns `false` when `p` has
    /// no exclusively-owned cached slot to corrupt.
    #[doc(hidden)]
    pub(crate) fn debug_corrupt(&self, p: PartitionId) -> bool {
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        let Some(cached) = slots.get_mut(&p) else {
            return false;
        };
        let Some(values) = Arc::get_mut(&mut cached.block) else {
            return false;
        };
        match values.first_mut() {
            Some(v) => {
                *v = f32::from_bits(v.to_bits() ^ 1);
                true
            }
            None => false,
        }
    }
}

fn read_values(
    store: &PartitionStore,
    p: PartitionId,
    expected_rows: usize,
    dim: usize,
) -> Result<Arc<Vec<f32>>> {
    let (values, _state) = store.read_partition_expect(p, expected_rows, dim)?;
    Ok(Arc::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_telemetry::Telemetry;

    fn store_with_partitions(rows: &[usize], dim: usize) -> PartitionStore {
        let store = PartitionStore::open_temp("serve-cache-test").unwrap();
        for (p, &n) in rows.iter().enumerate() {
            let values: Vec<f32> = (0..n * dim).map(|i| (p * 1000 + i) as f32).collect();
            let state = vec![0.0f32; n * dim];
            store
                .write_partition(p as PartitionId, &values, &state)
                .unwrap();
        }
        store
    }

    #[test]
    fn admission_respects_the_byte_budget() {
        let telemetry = Telemetry::enabled();
        let rows = [4usize, 4, 4, 4];
        let dim = 2;
        // One partition = 4 rows × 2 dims × 4 bytes = 32 bytes; budget fits two.
        let cache = ReadCache::new(&[2, 0, 3, 1], &rows, dim, 64, &telemetry);
        assert_eq!(cache.admitted_partitions(), 2);
        assert!(cache.admitted_bytes() <= cache.budget_bytes());
        assert!(cache.admitted[2] && cache.admitted[0]);
        assert!(!cache.admitted[3] && !cache.admitted[1]);
    }

    #[test]
    fn tiny_budget_still_admits_the_hottest_partition() {
        let telemetry = Telemetry::disabled();
        let cache = ReadCache::new(&[1, 0], &[8, 8], 4, 1, &telemetry);
        assert_eq!(cache.admitted_partitions(), 1);
        assert!(cache.admitted[1]);
    }

    #[test]
    fn fetch_counts_miss_then_hits_and_bypasses_cold_partitions() {
        let telemetry = Telemetry::enabled();
        let dim = 2;
        let rows = [3usize, 3];
        let store = store_with_partitions(&rows, dim);
        let cache = ReadCache::new(&[0, 1], &rows, dim, 24, &telemetry);
        assert_eq!(cache.admitted_partitions(), 1);

        let first = cache.fetch(&store, 0, 3, dim).unwrap();
        let again = cache.fetch(&store, 0, 3, dim).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        let _cold = cache.fetch(&store, 1, 3, dim).unwrap();
        let _cold = cache.fetch(&store, 1, 3, dim).unwrap();

        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("server.cache.miss"), Some(1));
        assert_eq!(snap.counter("server.cache.hit"), Some(1));
        assert_eq!(snap.counter("server.cache.bypass"), Some(2));
    }

    #[test]
    fn row_count_mismatch_surfaces_as_checkpoint_error() {
        let telemetry = Telemetry::disabled();
        let dim = 2;
        let store = store_with_partitions(&[3], dim);
        let cache = ReadCache::new(&[0], &[3], dim, 1024, &telemetry);
        let err = cache.fetch(&store, 0, 5, dim).unwrap_err();
        assert!(format!("{err}").contains("expects 5 rows"), "{err}");
    }

    #[test]
    fn corrupted_cached_copy_quarantines_and_reads_through() {
        let telemetry = Telemetry::enabled();
        let dim = 2;
        let rows = [3usize];
        let store = store_with_partitions(&rows, dim);
        let cache = ReadCache::new(&[0], &rows, dim, 1024, &telemetry);

        let clean = cache.fetch(&store, 0, 3, dim).unwrap();
        // Clone the bytes (not the Arc) so the cache's slot is the only
        // remaining strong reference and debug_corrupt can mutate in place.
        let expected: Vec<f32> = (*clean).clone();
        drop(clean);
        assert!(cache.debug_corrupt(0), "partition 0 should be resident");

        // The corrupted hit degrades to a verified re-read: same bytes as the
        // original block, quarantine recorded, and the partition bypasses the
        // cache from now on.
        let reread = cache.fetch(&store, 0, 3, dim).unwrap();
        assert_eq!(*reread, *expected);
        assert_eq!(cache.quarantined_partitions(), 1);
        let after = cache.fetch(&store, 0, 3, dim).unwrap();
        assert_eq!(*after, *expected);

        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("server.cache.quarantine"), Some(1));
        assert!(snap.counter("server.cache.bypass").unwrap_or(0) >= 1);
    }
}
