//! `marius-serve` — concurrent link-prediction serving over checkpoints.
//!
//! Training ends at a durable checkpoint directory (`marius_core::checkpoint`);
//! this crate is the read path that turns one into a queryable model. A
//! [`Server`] loads the newest checkpoint version, rebuilds the DistMult
//! decoder from the manifest's blobs, wires the base embeddings up to one of
//! two backends, and then answers queries from any number of threads through
//! `&self` methods:
//!
//! * [`Server::score_pairs`] — pairwise scoring of `(source, relation,
//!   destination)` triples through the training decoder kernels,
//! * [`Server::top_k`] / [`Server::top_k_among`] — top-k tail prediction
//!   (`(source, relation, ?)`) over all nodes or a candidate list,
//! * [`Server::knn`] — k-nearest-neighbour search over the embedding table
//!   under dot-product similarity.
//!
//! # Backends and cache-policy reuse
//!
//! [`ServeMode::InMemory`] materialises the whole embedding table up front —
//! from the checkpoint's table blob, or by reassembling its partition
//! snapshot. [`ServeMode::ReadCache`] keeps the partition snapshot on disk
//! behind a **byte-budgeted hot-partition read cache**: the checkpoint's own
//! COMET/BETA replacement policy (`marius_storage::policy`) is asked for an
//! epoch plan, partitions are ranked by how often that plan schedules them,
//! and the hottest partitions are admitted until the byte budget is full.
//! Admitted partitions are cached on first touch and stay resident (the cache
//! never exceeds its budget, so nothing is ever evicted); cold partitions are
//! read through on every access. Under the skewed query mixes serving
//! actually sees (see [`workload::ZipfWorkload`]), this replays the paper's
//! out-of-core buffer tradeoffs on the read path.
//!
//! # Degradation modes & reload semantics
//!
//! The server honors the same robustness contract the trainer does: faults
//! degrade service *predictably* — never into wrong answers — and every
//! degraded state is typed and observable. From least to most severe:
//!
//! * **Transient device faults** are absorbed below the query: the backing
//!   `PartitionStore` opens with [`RetryPolicy::default_transient`] (override
//!   via [`ServeConfig::with_retry_policy`]) and a seeded
//!   [`IoFaultPlan`]/[`FaultInjector`] can be attached for chaos testing. A
//!   read that exhausts the store's retry budget is re-run whole-query up to
//!   [`ServeConfig::with_query_retries`] times against a freshly pinned
//!   snapshot; each absorbed exhaustion counts into `server.error.transient`.
//!   Because queries draw no RNG, a retried query's answer is bit-identical
//!   to a fault-free run's.
//! * **Corrupted cached copies** enter the *quarantine* degraded mode: every
//!   block entering the read cache is fingerprinted
//!   (`marius_storage::partition_digest`) and re-verified on each hit. A
//!   mismatch quarantines the partition — it permanently bypasses the cache
//!   (`server.cache.quarantine`, [`Server::health`]) — and the query
//!   transparently re-reads verified bytes from disk.
//! * **Permanent faults** (dead device, corrupt snapshot) surface as a typed
//!   [`ServeError::Permanent`] after counting into `server.error.permanent` —
//!   never a panic.
//! * **Overload** is handled by admission control: a bounded in-flight budget
//!   ([`ServeConfig::with_max_in_flight`]) sheds excess queries with
//!   [`ServeError::Overloaded`] (`server.shed`), and per-query deadlines
//!   ([`ServeConfig::with_deadline`]) abandon stragglers between work chunks
//!   with [`ServeError::DeadlineExceeded`] (`server.deadline_exceeded`).
//!
//! **Hot reload**: [`Server::reload`] atomically swaps in the newest
//! `epoch-NNNNNN/` version behind an epoch-versioned handle. Every query pins
//! the current snapshot (an `Arc`) for its whole run, so in-flight queries
//! finish against the epoch they started on while new queries see the new
//! one — each answer is wholly from one epoch, never torn across two. The
//! checkpoint writer retains the previous version on disk, so a server
//! serving epoch `N` stays valid while `N+1` is written and pruned into.
//! [`Server::watch_checkpoints`] runs reload on a background poll loop
//! (continuous train→checkpoint→serve); [`Server::health`] reports the
//! current epoch plus all error/shed/reload counters for readiness probes.
//!
//! # Consistency guarantees
//!
//! * **Thread-count invariance** — queries take `&self` over immutable state
//!   and draw no RNG, so N threads over one shared `Server` return results
//!   bit-identical to a single-threaded run of the same queries.
//! * **Backend invariance** — both backends serve the same bytes for the same
//!   node, so switching [`ServeMode`] can never change a result, only its
//!   latency profile.
//! * **Deterministic ranking** — top-k and k-NN order by score descending
//!   with ties broken by ascending node id (under IEEE total order), so
//!   result *sets and orders* are stable across runs, chunk sizes and
//!   backends.
//! * **Relocatability** — every path the loader touches is derived from the
//!   checkpoint root it was handed, so a copied checkpoint directory serves
//!   identically from its new location.
//!
//! Serving requires a decoder-only (DistMult) link-prediction checkpoint —
//! the paper's Table 8 configuration, [`ModelConfig::paper_distmult`]
//! (`marius_core::config`). Encoder-bearing checkpoints are rejected at load
//! time: their stored rows are *base* representations that only become
//! comparable after a stochastic multi-hop encoding pass, which has no
//! deterministic serving semantics.
//!
//! All server internals record `server.*` telemetry through
//! `marius_telemetry`: per-query spans, `server.cache.hit`/`miss`/`bypass`/
//! `quarantine` counters, `server.error.{transient,permanent}`,
//! `server.shed`, `server.deadline_exceeded`, `server.reload.{count,epoch}`,
//! and per-query-kind latency histograms (`server.latency_us.*`).
//!
//! [`ModelConfig::paper_distmult`]: marius_core::ModelConfig::paper_distmult

mod admission;
mod backend;
mod cache;
pub mod error;
mod reload;
pub mod workload;

pub use error::{ServeError, ServeResult};
pub use reload::CheckpointWatcher;
pub use workload::ZipfWorkload;

use std::cmp::Ordering;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use marius_core::{
    read_all_embeddings, Checkpoint, DiskConfig, EncoderKind, PolicyKind, StorageKind,
};
use marius_gnn::DistMult;
use marius_graph::{NodeId, PartitionId, Partitioner, RelId};
use marius_storage::policy::{BetaPolicy, CometPolicy, ReplacementPolicy};
use marius_storage::{
    FaultInjector, IoFaultPlan, PartitionStore, Result, RetryPolicy, StorageError,
};
use marius_telemetry::{Counter, Histogram, Telemetry, NO_LABEL};
use marius_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use admission::{Admission, QueryClock};
use backend::Backend;
use cache::ReadCache;
use reload::SnapshotHandle;

/// Candidate nodes scored per decoder-kernel call when scanning the graph.
const SCORE_CHUNK: usize = 1024;

/// Salt mixed into the training seed for the cache-admission plan RNG, so the
/// plan replay cannot collide with any training-side RNG stream.
const HEAT_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Where the server keeps base embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Materialise the whole embedding table in memory at load time.
    InMemory,
    /// Serve out of core from the checkpoint's partition snapshot, behind a
    /// byte-budgeted hot-partition read cache (requires a disk checkpoint).
    ReadCache {
        /// Maximum bytes of partition values the cache may hold resident.
        budget_bytes: u64,
    },
}

/// Configuration for [`Server::from_checkpoint_with`].
#[derive(Clone, Default)]
pub struct ServeConfig {
    mode: Option<ServeMode>,
    telemetry: Telemetry,
    faults: Option<Arc<FaultInjector>>,
    retry: Option<RetryPolicy>,
    max_in_flight: Option<u64>,
    deadline: Option<Duration>,
    query_retries: Option<u32>,
}

impl ServeConfig {
    /// Serve from a fully materialised in-memory table (the default).
    pub fn in_memory() -> Self {
        ServeConfig {
            mode: Some(ServeMode::InMemory),
            ..ServeConfig::default()
        }
    }

    /// Serve out of core behind a read cache holding at most `budget_bytes`
    /// of partition values.
    pub fn read_cache(budget_bytes: u64) -> Self {
        ServeConfig {
            mode: Some(ServeMode::ReadCache { budget_bytes }),
            ..ServeConfig::default()
        }
    }

    /// Attaches a [`Telemetry`] recorder: per-query spans, cache counters and
    /// latency histograms record into the cloned handle. Recording reads only
    /// monotonic clocks, so query results are unaffected.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Attaches a deterministic fault schedule to the backing store —
    /// mirrors `Session::builder().fault_plan(..)` on the training side, so
    /// chaos suites can replay the exact same injected-fault regimes against
    /// the read path.
    pub fn with_fault_plan(self, plan: IoFaultPlan) -> Self {
        self.with_fault_injector(plan.build())
    }

    /// Attaches a shared, already-built [`FaultInjector`] handle (useful to
    /// arm outages/permanent failures mid-run from the test driving it).
    pub fn with_fault_injector(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Overrides the store-level retry policy for partition reads. The
    /// default is [`RetryPolicy::default_transient`]; pass
    /// [`RetryPolicy::no_retries`] to surface every transient fault to the
    /// serve-level retry layer instead.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Bounds concurrently admitted queries: excess arrivals are shed with a
    /// typed [`ServeError::Overloaded`] instead of queueing without bound.
    /// Unbounded by default; a limit of 0 is clamped to 1.
    pub fn with_max_in_flight(mut self, limit: u64) -> Self {
        self.max_in_flight = Some(limit);
        self
    }

    /// Sets a per-query deadline: a query that outlives it is abandoned at
    /// the next work-chunk boundary with [`ServeError::DeadlineExceeded`].
    /// No deadline by default.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// How many times a query whose storage reads exhausted the store-level
    /// retry budget is re-run whole against a freshly pinned snapshot before
    /// the transient error surfaces (default 1). Each absorbed exhaustion
    /// counts into `server.error.transient`; answers stay bit-identical
    /// because queries draw no RNG.
    pub fn with_query_retries(mut self, retries: u32) -> Self {
        self.query_retries = Some(retries);
        self
    }
}

/// One ranked query answer: a node and its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The predicted node.
    pub node: NodeId,
    /// Its score (DistMult score for top-k, dot-product similarity for k-NN).
    pub score: f32,
}

/// Deterministic ranking: score descending (IEEE total order), then node id
/// ascending. The tie-break makes top-k/k-NN results independent of chunking
/// and thread count even when distinct nodes score exactly equal.
fn rank_order(a: &Prediction, b: &Prediction) -> Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.node.cmp(&b.node))
}

/// Merges `fresh` candidates into the running `best` list, keeping the `k`
/// highest under [`rank_order`].
fn merge_top_k(best: &mut Vec<Prediction>, fresh: impl IntoIterator<Item = Prediction>, k: usize) {
    best.extend(fresh);
    best.sort_unstable_by(rank_order);
    best.truncate(k);
}

/// A point-in-time readiness/liveness snapshot of one [`Server`], from
/// [`Server::health`]. All counters are monotonic since server construction
/// and always on — they do not require an enabled [`Telemetry`] recorder.
#[derive(Debug, Clone)]
pub struct ServerHealth {
    /// Epochs completed by the currently served checkpoint version.
    pub epoch: usize,
    /// Queries currently admitted and running.
    pub in_flight: u64,
    /// The in-flight budget, `None` when unbounded.
    pub max_in_flight: Option<u64>,
    /// The per-query deadline, if configured.
    pub deadline: Option<Duration>,
    /// Partitions the read cache admits (`None` when serving in memory).
    pub cache_admitted_partitions: Option<usize>,
    /// Partitions quarantined after failing fingerprint verification.
    pub cache_quarantined_partitions: Option<usize>,
    /// Transient errors observed at the serve layer (store retry budget
    /// exhaustions, whether absorbed by a query retry or surfaced).
    pub transient_errors: u64,
    /// Permanent errors surfaced to callers.
    pub permanent_errors: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Queries abandoned past their deadline.
    pub deadline_exceeded: u64,
    /// Successful hot reloads ([`Server::reload`] swaps applied).
    pub reloads: u64,
    /// Reload attempts that failed (checkpoint mid-write, device fault).
    pub reload_errors: u64,
    /// Transient faults transparently retried inside the backing store for
    /// the current snapshot (out-of-core only).
    pub store_retries: u64,
    /// Faults injected by the attached [`FaultInjector`], if any.
    pub faults_injected: u64,
}

/// Always-on degradation counters (telemetry handles are no-ops when the
/// recorder is disabled, so health reporting needs its own atomics).
#[derive(Default)]
struct ServerStats {
    transient: AtomicU64,
    permanent: AtomicU64,
    deadline_exceeded: AtomicU64,
    reloads: AtomicU64,
    reload_errors: AtomicU64,
}

/// One loaded checkpoint version: everything a query touches, pinned
/// together so an answer is wholly from one epoch.
pub(crate) struct Snapshot {
    epoch: usize,
    decoder: DistMult,
    backend: Backend,
    dim: usize,
    num_nodes: u64,
    num_relations: usize,
}

impl Snapshot {
    fn score_pairs(
        &self,
        triples: &[(NodeId, RelId, NodeId)],
        clock: &QueryClock,
    ) -> ServeResult<Vec<f32>> {
        if triples.is_empty() {
            return Ok(Vec::new());
        }
        clock.check()?;
        let srcs: Vec<NodeId> = triples.iter().map(|&(s, _, _)| s).collect();
        let rels: Vec<RelId> = triples.iter().map(|&(_, r, _)| r).collect();
        let dsts: Vec<NodeId> = triples.iter().map(|&(_, _, d)| d).collect();
        let src_t = self.gather(&srcs)?;
        clock.check()?;
        let dst_t = self.gather(&dsts)?;
        let scores = self.decoder.score_positive(&src_t, &rels, &dst_t);
        Ok((0..triples.len()).map(|i| scores.get(i, 0)).collect())
    }

    fn top_k(
        &self,
        src: NodeId,
        rel: RelId,
        k: usize,
        candidates: Option<&[NodeId]>,
        clock: &QueryClock,
    ) -> ServeResult<Vec<Prediction>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let src_t = self.gather(&[src])?;
        let mut best: Vec<Prediction> = Vec::with_capacity(k + SCORE_CHUNK);
        self.for_each_candidate_chunk(candidates, clock, |chunk, snap| {
            let negs = snap.gather(chunk)?;
            let scores = snap.decoder.score_negatives(&src_t, &[rel], &negs);
            merge_top_k(
                &mut best,
                chunk.iter().enumerate().map(|(i, &node)| Prediction {
                    node,
                    score: scores.get(0, i),
                }),
                k,
            );
            Ok(())
        })?;
        Ok(best)
    }

    fn knn(&self, node: NodeId, k: usize, clock: &QueryClock) -> ServeResult<Vec<Prediction>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let query = self.gather(&[node])?.transpose(); // (dim, 1)
        let mut best: Vec<Prediction> = Vec::with_capacity(k + SCORE_CHUNK);
        self.for_each_candidate_chunk(None, clock, |chunk, snap| {
            let rows = snap.gather(chunk)?;
            let sims = rows.matmul(&query); // (chunk, 1)
            merge_top_k(
                &mut best,
                chunk
                    .iter()
                    .enumerate()
                    .filter(|&(_, &cand)| cand != node)
                    .map(|(i, &cand)| Prediction {
                        node: cand,
                        score: sims.get(i, 0),
                    }),
                k,
            );
            Ok(())
        })?;
        Ok(best)
    }

    /// Runs `f` over the candidate set in [`SCORE_CHUNK`]-sized slices —
    /// either the explicit list or every node id in order — checking the
    /// deadline clock before each chunk.
    fn for_each_candidate_chunk(
        &self,
        candidates: Option<&[NodeId]>,
        clock: &QueryClock,
        mut f: impl FnMut(&[NodeId], &Self) -> ServeResult<()>,
    ) -> ServeResult<()> {
        match candidates {
            Some(list) => {
                for chunk in list.chunks(SCORE_CHUNK) {
                    clock.check()?;
                    f(chunk, self)?;
                }
            }
            None => {
                let mut start = 0u64;
                while start < self.num_nodes {
                    clock.check()?;
                    let end = (start + SCORE_CHUNK as u64).min(self.num_nodes);
                    let chunk: Vec<NodeId> = (start..end).collect();
                    f(&chunk, self)?;
                    start = end;
                }
            }
        }
        Ok(())
    }

    fn gather(&self, nodes: &[NodeId]) -> Result<Tensor> {
        self.backend.gather(nodes, self.num_nodes, self.dim)
    }
}

/// Everything needed to (re)load a snapshot from the checkpoint root —
/// fixed at server construction so every reload opens the store with the
/// same retry policy, fault schedule, and telemetry as the first load.
struct LoadSpec {
    root: PathBuf,
    mode: ServeMode,
    retry: RetryPolicy,
    faults: Option<Arc<FaultInjector>>,
    telemetry: Telemetry,
}

impl LoadSpec {
    fn load(&self) -> Result<Snapshot> {
        let ckpt = Checkpoint::open(&self.root)?;
        // Temporal link prediction ("tlp") checkpoints share the
        // link-prediction layout (embedding table + relation decoder) and
        // serve identically — streamed train→serve loops rely on this.
        if ckpt.task_slug != "lp" && ckpt.task_slug != "tlp" {
            return Err(StorageError::checkpoint(format!(
                "serving requires a link-prediction checkpoint, found task {:?}",
                ckpt.task_slug
            )));
        }
        if ckpt.model.encoder != EncoderKind::None || ckpt.model.num_layers != 0 {
            return Err(StorageError::checkpoint(
                "serving requires a decoder-only (DistMult) checkpoint: encoder-bearing \
                 models have no deterministic serving semantics (see marius_serve docs)",
            ));
        }
        let dim = ckpt.model.output_dim;

        // Rebuild the decoder: allocate with any seed, then overlay the
        // checkpointed relation embeddings bit-for-bit.
        let rel_blob = ckpt
            .state
            .get("model.decoder.relations.value")
            .ok_or_else(|| {
                StorageError::checkpoint(
                    "checkpoint carries no DistMult relation blob (model.decoder.relations.value)",
                )
            })?;
        let (num_relations, rel_dim) = rel_blob.shape();
        if rel_dim != dim {
            return Err(StorageError::checkpoint(format!(
                "relation blob dimension {rel_dim} does not match the model dimension {dim}"
            )));
        }
        let rel_values = rel_blob.as_f32()?;
        let mut decoder = DistMult::new(num_relations, dim, &mut StdRng::seed_from_u64(0));
        decoder.relation_param_mut().value = Tensor::from_vec(rel_values, num_relations, dim);

        let num_nodes = ckpt.dataset_spec.num_nodes;
        let backend = match &ckpt.storage {
            StorageKind::InMemory => match self.mode {
                ServeMode::InMemory => {
                    let flat =
                        ckpt.state
                            .require_f32("source.table.values", num_nodes as usize, dim)?;
                    Backend::in_memory(flat)
                }
                ServeMode::ReadCache { .. } => {
                    return Err(StorageError::checkpoint(
                        "read-cache serving needs an out-of-core checkpoint with a partition \
                         snapshot; this checkpoint trained in memory",
                    ))
                }
            },
            StorageKind::Disk(disk) => {
                if !ckpt.has_store_snapshot {
                    return Err(StorageError::checkpoint(
                        "checkpoint carries no partition snapshot to serve from",
                    ));
                }
                // Replay the partition assignment exactly as training derived
                // it: the assignment draw is the trainer RNG's first use, so
                // seeding with the training seed and replaying that prefix
                // recovers the node → partition map without reading the graph.
                let mut rng = StdRng::seed_from_u64(ckpt.train.seed);
                let assignment = Partitioner::new(disk.num_partitions)
                    .map_err(|e| StorageError::InvalidPlan {
                        reason: format!("cannot replay the partition assignment: {e}"),
                    })?
                    .random(num_nodes, &mut rng);
                let mut store = PartitionStore::open(ckpt.dir.join("partitions"))?
                    .with_telemetry(&self.telemetry)
                    .with_retry_policy(self.retry);
                if let Some(faults) = &self.faults {
                    store = store.with_fault_injector(Arc::clone(faults));
                }
                match self.mode {
                    ServeMode::InMemory => {
                        let flat = read_all_embeddings(&store, &assignment, dim)?;
                        Backend::in_memory(flat)
                    }
                    ServeMode::ReadCache { budget_bytes } => {
                        let heat = heat_order(
                            disk,
                            &mut StdRng::seed_from_u64(ckpt.train.seed ^ HEAT_SEED_SALT),
                        )?;
                        let rows: Vec<usize> = assignment.partition_sizes();
                        let cache =
                            ReadCache::new(&heat, &rows, dim, budget_bytes, &self.telemetry);
                        Backend::out_of_core(store, assignment, cache)
                    }
                }
            }
        };

        Ok(Snapshot {
            epoch: ckpt.epochs_completed,
            decoder,
            backend,
            dim,
            num_nodes,
            num_relations,
        })
    }
}

/// Reads the `LATEST` pointer and parses its `epoch-NNNNNN` name, so a
/// reload can no-op without the full (store-opening, blob-verifying) load.
fn peek_latest_epoch(root: &Path) -> Option<usize> {
    let name = std::fs::read_to_string(root.join("LATEST")).ok()?;
    name.trim().strip_prefix("epoch-")?.parse().ok()
}

/// A read-only serving handle over one loaded checkpoint root. Shareable
/// across threads (`Server: Send + Sync`); all query methods take `&self`.
/// See the crate docs for degradation modes and hot-reload semantics.
pub struct Server {
    spec: LoadSpec,
    snapshot: SnapshotHandle,
    /// Serialises concurrent [`Server::reload`] calls (queries never block).
    reload_lock: Mutex<()>,
    admission: Admission,
    query_retries: u32,
    telemetry: Telemetry,
    stats: ServerStats,
    err_transient: Counter,
    err_permanent: Counter,
    deadline_count: Counter,
    reload_count: Counter,
    reload_errs: Counter,
    q_pairwise: Counter,
    q_topk: Counter,
    q_knn: Counter,
    lat_pairwise: Histogram,
    lat_topk: Histogram,
    lat_knn: Histogram,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot.load();
        f.debug_struct("Server")
            .field("epoch", &snap.epoch)
            .field("num_nodes", &snap.num_nodes)
            .field("num_relations", &snap.num_relations)
            .field("dim", &snap.dim)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Opens the newest checkpoint under `root` and serves it from memory
    /// with telemetry disabled. See [`Server::from_checkpoint_with`].
    pub fn from_checkpoint(root: impl AsRef<Path>) -> Result<Self> {
        Self::from_checkpoint_with(root, ServeConfig::in_memory())
    }

    /// Opens the newest checkpoint under `root` (the directory passed to
    /// `checkpoint_to` during training), rebuilds the DistMult decoder
    /// read-only from the manifest's blobs, and wires up the embedding
    /// backend selected by `config`.
    ///
    /// The backing partition store always carries a retry policy
    /// ([`RetryPolicy::default_transient`] unless overridden), so a single
    /// transient read fault can never fail a query.
    ///
    /// Fails with a typed [`StorageError`] when the checkpoint was written by
    /// a different task, carries an encoder (see the crate docs), or lacks
    /// the partition snapshot a [`ServeMode::ReadCache`] needs.
    pub fn from_checkpoint_with(root: impl AsRef<Path>, config: ServeConfig) -> Result<Self> {
        let telemetry = config.telemetry.clone();
        let spec = LoadSpec {
            root: root.as_ref().to_path_buf(),
            mode: config.mode.unwrap_or(ServeMode::InMemory),
            retry: config.retry.unwrap_or_else(RetryPolicy::default_transient),
            faults: config.faults.clone(),
            telemetry: telemetry.clone(),
        };
        let snapshot = spec.load()?;
        telemetry
            .gauge("server.reload.epoch")
            .set(snapshot.epoch as i64);
        let latency_bounds: Vec<u64> = (0..=20).map(|e| 1u64 << e).collect();
        Ok(Server {
            snapshot: SnapshotHandle::new(snapshot),
            reload_lock: Mutex::new(()),
            admission: Admission::new(config.max_in_flight, config.deadline, &telemetry),
            query_retries: config.query_retries.unwrap_or(1),
            stats: ServerStats::default(),
            err_transient: telemetry.counter("server.error.transient"),
            err_permanent: telemetry.counter("server.error.permanent"),
            deadline_count: telemetry.counter("server.deadline_exceeded"),
            reload_count: telemetry.counter("server.reload.count"),
            reload_errs: telemetry.counter("server.reload.error"),
            q_pairwise: telemetry.counter("server.queries.pairwise"),
            q_topk: telemetry.counter("server.queries.topk"),
            q_knn: telemetry.counter("server.queries.knn"),
            lat_pairwise: telemetry.histogram("server.latency_us.pairwise", &latency_bounds),
            lat_topk: telemetry.histogram("server.latency_us.topk", &latency_bounds),
            lat_knn: telemetry.histogram("server.latency_us.knn", &latency_bounds),
            telemetry,
            spec,
        })
    }

    /// Number of nodes in the served graph.
    pub fn num_nodes(&self) -> u64 {
        self.snapshot.load().num_nodes
    }

    /// Number of relation types the decoder knows.
    pub fn num_relations(&self) -> usize {
        self.snapshot.load().num_relations
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.snapshot.load().dim
    }

    /// Epochs completed by the currently served checkpoint version.
    pub fn epoch(&self) -> usize {
        self.snapshot.load().epoch
    }

    /// The telemetry recorder queries report into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The fault injector attached via [`ServeConfig::with_fault_plan`] /
    /// [`ServeConfig::with_fault_injector`], if any — chaos suites use this
    /// to arm outages or permanent failures mid-run.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.spec.faults.as_ref()
    }

    /// Number of partitions the read cache admits, when serving out of core.
    pub fn cache_admitted_partitions(&self) -> Option<usize> {
        self.snapshot
            .load()
            .backend
            .cache()
            .map(ReadCache::admitted_partitions)
    }

    /// Number of partitions quarantined after a cached copy failed its
    /// fingerprint check, when serving out of core (see the crate docs).
    pub fn cache_quarantined_partitions(&self) -> Option<usize> {
        self.snapshot
            .load()
            .backend
            .cache()
            .map(ReadCache::quarantined_partitions)
    }

    /// Bytes the read cache's admitted set occupies once resident, when
    /// serving out of core (always within the configured budget).
    pub fn cache_admitted_bytes(&self) -> Option<u64> {
        self.snapshot
            .load()
            .backend
            .cache()
            .map(ReadCache::admitted_bytes)
    }

    /// The read cache's configured byte budget, when serving out of core.
    pub fn cache_budget_bytes(&self) -> Option<u64> {
        self.snapshot
            .load()
            .backend
            .cache()
            .map(ReadCache::budget_bytes)
    }

    /// A readiness/liveness snapshot: current epoch, in-flight load, cache
    /// occupancy and every degradation counter. All counters are always on —
    /// they do not require an enabled telemetry recorder.
    pub fn health(&self) -> ServerHealth {
        let snap = self.snapshot.load();
        ServerHealth {
            epoch: snap.epoch,
            in_flight: self.admission.in_flight(),
            max_in_flight: self.admission.limit(),
            deadline: self.admission.deadline(),
            cache_admitted_partitions: snap.backend.cache().map(ReadCache::admitted_partitions),
            cache_quarantined_partitions: snap
                .backend
                .cache()
                .map(ReadCache::quarantined_partitions),
            transient_errors: self.stats.transient.load(AtomicOrdering::Relaxed),
            permanent_errors: self.stats.permanent.load(AtomicOrdering::Relaxed),
            shed: self.admission.shed_total(),
            deadline_exceeded: self.stats.deadline_exceeded.load(AtomicOrdering::Relaxed),
            reloads: self.stats.reloads.load(AtomicOrdering::Relaxed),
            reload_errors: self.stats.reload_errors.load(AtomicOrdering::Relaxed),
            store_retries: snap
                .backend
                .store()
                .map_or(0, |store| store.io_stats().io_retries),
            faults_injected: self.spec.faults.as_ref().map_or(0, |f| f.faults_injected()),
        }
    }

    /// Checks the checkpoint root for a newer `epoch-NNNNNN/` version and
    /// atomically swaps it in. Returns `Ok(Some(epoch))` when a newer version
    /// was published, `Ok(None)` when the served version is already the
    /// newest. In-flight queries finish against the snapshot they pinned;
    /// queries admitted after the swap see the new epoch — no answer is ever
    /// torn across two versions.
    ///
    /// Concurrent reload calls serialise; a failed load (checkpoint
    /// mid-write, transient device fault) leaves the current snapshot
    /// serving and surfaces the error.
    pub fn reload(&self) -> Result<Option<usize>> {
        let _guard = self.reload_lock.lock().unwrap_or_else(|e| e.into_inner());
        let current = self.snapshot.load().epoch;
        // Cheap no-op check: parse LATEST before paying for a full verified
        // load. An unreadable/unparseable pointer falls through to the full
        // open, which produces the proper typed error.
        if peek_latest_epoch(&self.spec.root) == Some(current) {
            return Ok(None);
        }
        let fresh = self.spec.load()?;
        if fresh.epoch == current {
            return Ok(None);
        }
        let epoch = fresh.epoch;
        self.snapshot.store(Arc::new(fresh));
        self.stats.reloads.fetch_add(1, AtomicOrdering::Relaxed);
        self.reload_count.incr();
        self.telemetry
            .gauge("server.reload.epoch")
            .set(epoch as i64);
        Ok(Some(epoch))
    }

    /// Spawns a background thread that calls [`Server::reload`] every `poll`
    /// interval, hot-swapping each new checkpoint version as training
    /// publishes it. Reload failures are counted (`server.reload.error`) and
    /// retried at the next poll while the current snapshot keeps serving.
    /// The returned watcher stops and joins the thread on drop.
    pub fn watch_checkpoints(self: &Arc<Self>, poll: Duration) -> CheckpointWatcher {
        CheckpointWatcher::spawn(Arc::clone(self), poll)
    }

    pub(crate) fn note_reload_error(&self) {
        self.stats
            .reload_errors
            .fetch_add(1, AtomicOrdering::Relaxed);
        self.reload_errs.incr();
    }

    /// Scores one `(source, relation, destination)` triple.
    pub fn score(&self, src: NodeId, rel: RelId, dst: NodeId) -> ServeResult<f32> {
        Ok(self.score_pairs(&[(src, rel, dst)])?[0])
    }

    /// Scores a batch of triples through the training decoder kernel.
    /// Relation ids wrap modulo the relation count, matching training.
    pub fn score_pairs(&self, triples: &[(NodeId, RelId, NodeId)]) -> ServeResult<Vec<f32>> {
        let start = Instant::now();
        let mut scope = self.telemetry.scope("server");
        scope.begin("server.pairwise", triples.len() as i64, NO_LABEL);
        let out = self.run_admitted(|snap, clock| snap.score_pairs(triples, clock));
        scope.end();
        self.q_pairwise.incr();
        self.lat_pairwise.record(elapsed_us(start));
        out
    }

    /// Top-k tail prediction `(src, rel, ?)` over every node in the graph,
    /// ranked score-descending with ties broken by ascending node id.
    pub fn top_k(&self, src: NodeId, rel: RelId, k: usize) -> ServeResult<Vec<Prediction>> {
        self.top_k_query(src, rel, k, None)
    }

    /// Top-k tail prediction restricted to an explicit candidate list.
    pub fn top_k_among(
        &self,
        src: NodeId,
        rel: RelId,
        k: usize,
        candidates: &[NodeId],
    ) -> ServeResult<Vec<Prediction>> {
        self.top_k_query(src, rel, k, Some(candidates))
    }

    fn top_k_query(
        &self,
        src: NodeId,
        rel: RelId,
        k: usize,
        candidates: Option<&[NodeId]>,
    ) -> ServeResult<Vec<Prediction>> {
        let start = Instant::now();
        let mut scope = self.telemetry.scope("server");
        scope.begin("server.topk", k as i64, NO_LABEL);
        let out = self.run_admitted(|snap, clock| snap.top_k(src, rel, k, candidates, clock));
        scope.end();
        self.q_topk.incr();
        self.lat_topk.record(elapsed_us(start));
        out
    }

    /// The `k` nearest neighbours of `node` in the embedding table under
    /// dot-product similarity, excluding `node` itself; ranked
    /// similarity-descending with ties broken by ascending node id.
    pub fn knn(&self, node: NodeId, k: usize) -> ServeResult<Vec<Prediction>> {
        let start = Instant::now();
        let mut scope = self.telemetry.scope("server");
        scope.begin("server.knn", k as i64, NO_LABEL);
        let out = self.run_admitted(|snap, clock| snap.knn(node, k, clock));
        scope.end();
        self.q_knn.incr();
        self.lat_knn.record(elapsed_us(start));
        out
    }

    /// The common query harness: admission (shed/deadline), snapshot
    /// pinning, serve-level retry of store-budget exhaustions, and error
    /// classification/counting. Each attempt pins a *fresh* snapshot, so a
    /// query retried across a hot reload completes wholly on the new epoch.
    fn run_admitted<T>(
        &self,
        f: impl Fn(&Snapshot, &QueryClock) -> ServeResult<T>,
    ) -> ServeResult<T> {
        let _permit = self.admission.admit()?;
        let clock = self.admission.clock();
        let mut attempt = 0u32;
        loop {
            let out = clock.check().and_then(|()| {
                let snapshot = self.snapshot.load();
                f(&snapshot, &clock)
            });
            match out {
                Ok(value) => return Ok(value),
                Err(e @ ServeError::DeadlineExceeded { .. }) => {
                    self.stats
                        .deadline_exceeded
                        .fetch_add(1, AtomicOrdering::Relaxed);
                    self.deadline_count.incr();
                    return Err(e);
                }
                Err(e @ ServeError::Transient { .. }) => {
                    self.stats.transient.fetch_add(1, AtomicOrdering::Relaxed);
                    self.err_transient.incr();
                    if attempt < self.query_retries {
                        attempt += 1;
                        continue;
                    }
                    return Err(e);
                }
                Err(e @ ServeError::Permanent { .. }) => {
                    self.stats.permanent.fetch_add(1, AtomicOrdering::Relaxed);
                    self.err_permanent.incr();
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Test hook: flips one bit of a cached partition copy in place (see
    /// `ReadCache::debug_corrupt`), so chaos suites can prove the quarantine
    /// degraded mode serves bit-identical answers from disk.
    #[doc(hidden)]
    pub fn debug_corrupt_cached_partition(&self, p: PartitionId) -> bool {
        self.snapshot
            .load()
            .backend
            .cache()
            .is_some_and(|cache| cache.debug_corrupt(p))
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Ranks partitions hottest-first for cache admission by replaying the
/// checkpoint's replacement policy: partitions a COMET/BETA epoch plan
/// schedules in more sets (and earlier) are the ones training touched most,
/// and a zipfian read mix over the same assignment concentrates there too.
fn heat_order(disk: &DiskConfig, rng: &mut StdRng) -> Result<Vec<PartitionId>> {
    let p = disk.num_partitions;
    let plan = match disk.policy {
        PolicyKind::Comet => {
            if disk.num_logical == 0 {
                CometPolicy::auto(p, disk.buffer_capacity).plan(p, rng)?
            } else {
                CometPolicy::new(disk.buffer_capacity, disk.num_logical).plan(p, rng)?
            }
        }
        PolicyKind::Beta => BetaPolicy::new(disk.buffer_capacity).plan(p, rng)?,
        PolicyKind::NodeCache => {
            return Err(StorageError::checkpoint(
                "node-cache checkpoints belong to node classification and cannot be served",
            ))
        }
    };
    let mut uses = vec![0usize; p as usize];
    let mut first_seen = vec![usize::MAX; p as usize];
    for (step, set) in plan.partition_sets.iter().enumerate() {
        for &pid in set {
            uses[pid as usize] += 1;
            first_seen[pid as usize] = first_seen[pid as usize].min(step);
        }
    }
    let mut order: Vec<PartitionId> = (0..p).collect();
    order.sort_by_key(|&pid| {
        (
            usize::MAX - uses[pid as usize],
            first_seen[pid as usize],
            pid,
        )
    });
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_order_breaks_score_ties_by_node_id() {
        let mut preds = [
            Prediction {
                node: 9,
                score: 1.0,
            },
            Prediction {
                node: 2,
                score: 1.0,
            },
            Prediction {
                node: 5,
                score: 2.0,
            },
            Prediction {
                node: 7,
                score: 0.5,
            },
        ];
        preds.sort_by(rank_order);
        let ids: Vec<NodeId> = preds.iter().map(|p| p.node).collect();
        assert_eq!(ids, vec![5, 2, 9, 7]);
    }

    #[test]
    fn merge_top_k_is_chunking_invariant() {
        let all: Vec<Prediction> = (0..100)
            .map(|i| Prediction {
                node: i,
                score: ((i * 37) % 13) as f32,
            })
            .collect();
        let mut one_shot = Vec::new();
        merge_top_k(&mut one_shot, all.iter().copied(), 7);
        let mut chunked = Vec::new();
        for chunk in all.chunks(9) {
            merge_top_k(&mut chunked, chunk.iter().copied(), 7);
        }
        assert_eq!(one_shot, chunked);
    }

    #[test]
    fn heat_order_is_deterministic_and_complete() {
        let disk = DiskConfig::comet(16, 4);
        let a = heat_order(&disk, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = heat_order(&disk, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn node_cache_policy_is_rejected_for_serving() {
        let disk = DiskConfig::node_cache(8, 4);
        let err = heat_order(&disk, &mut StdRng::seed_from_u64(1)).unwrap_err();
        assert!(format!("{err}").contains("node classification"), "{err}");
    }

    #[test]
    fn peek_latest_epoch_parses_the_pointer() {
        let dir = std::env::temp_dir().join(format!(
            "marius-serve-peek-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(peek_latest_epoch(&dir), None);
        std::fs::write(dir.join("LATEST"), "epoch-000042\n").unwrap();
        assert_eq!(peek_latest_epoch(&dir), Some(42));
        std::fs::write(dir.join("LATEST"), "garbage").unwrap();
        assert_eq!(peek_latest_epoch(&dir), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
