//! `marius-serve` — concurrent link-prediction serving over checkpoints.
//!
//! Training ends at a durable checkpoint directory (`marius_core::checkpoint`);
//! this crate is the read path that turns one into a queryable model. A
//! [`Server`] loads the newest checkpoint version, rebuilds the DistMult
//! decoder from the manifest's blobs, wires the base embeddings up to one of
//! two backends, and then answers queries from any number of threads through
//! `&self` methods:
//!
//! * [`Server::score_pairs`] — pairwise scoring of `(source, relation,
//!   destination)` triples through the training decoder kernels,
//! * [`Server::top_k`] / [`Server::top_k_among`] — top-k tail prediction
//!   (`(source, relation, ?)`) over all nodes or a candidate list,
//! * [`Server::knn`] — k-nearest-neighbour search over the embedding table
//!   under dot-product similarity.
//!
//! # Backends and cache-policy reuse
//!
//! [`ServeMode::InMemory`] materialises the whole embedding table up front —
//! from the checkpoint's table blob, or by reassembling its partition
//! snapshot. [`ServeMode::ReadCache`] keeps the partition snapshot on disk
//! behind a **byte-budgeted hot-partition read cache**: the checkpoint's own
//! COMET/BETA replacement policy (`marius_storage::policy`) is asked for an
//! epoch plan, partitions are ranked by how often that plan schedules them,
//! and the hottest partitions are admitted until the byte budget is full.
//! Admitted partitions are cached on first touch and stay resident (the cache
//! never exceeds its budget, so nothing is ever evicted); cold partitions are
//! read through on every access. Under the skewed query mixes serving
//! actually sees (see [`workload::ZipfWorkload`]), this replays the paper's
//! out-of-core buffer tradeoffs on the read path.
//!
//! # Consistency guarantees
//!
//! * **Thread-count invariance** — queries take `&self` over immutable state
//!   and draw no RNG, so N threads over one shared `Server` return results
//!   bit-identical to a single-threaded run of the same queries.
//! * **Backend invariance** — both backends serve the same bytes for the same
//!   node, so switching [`ServeMode`] can never change a result, only its
//!   latency profile.
//! * **Deterministic ranking** — top-k and k-NN order by score descending
//!   with ties broken by ascending node id (under IEEE total order), so
//!   result *sets and orders* are stable across runs, chunk sizes and
//!   backends.
//! * **Relocatability** — every path the loader touches is derived from the
//!   checkpoint root it was handed, so a copied checkpoint directory serves
//!   identically from its new location.
//!
//! Serving requires a decoder-only (DistMult) link-prediction checkpoint —
//! the paper's Table 8 configuration, [`ModelConfig::paper_distmult`]
//! (`marius_core::config`). Encoder-bearing checkpoints are rejected at load
//! time: their stored rows are *base* representations that only become
//! comparable after a stochastic multi-hop encoding pass, which has no
//! deterministic serving semantics.
//!
//! All server internals record `server.*` telemetry through
//! `marius_telemetry`: per-query spans, `server.cache.hit`/`miss`/`bypass`
//! counters, and per-query-kind latency histograms (`server.latency_us.*`).
//!
//! [`ModelConfig::paper_distmult`]: marius_core::ModelConfig::paper_distmult

mod backend;
mod cache;
pub mod workload;

pub use workload::ZipfWorkload;

use std::cmp::Ordering;
use std::path::Path;
use std::time::Instant;

use marius_core::{
    read_all_embeddings, Checkpoint, DiskConfig, EncoderKind, PolicyKind, StorageKind,
};
use marius_gnn::DistMult;
use marius_graph::{NodeId, PartitionId, Partitioner, RelId};
use marius_storage::policy::{BetaPolicy, CometPolicy, ReplacementPolicy};
use marius_storage::{PartitionStore, Result, StorageError};
use marius_telemetry::{Counter, Histogram, Telemetry, NO_LABEL};
use marius_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use backend::Backend;
use cache::ReadCache;

/// Candidate nodes scored per decoder-kernel call when scanning the graph.
const SCORE_CHUNK: usize = 1024;

/// Salt mixed into the training seed for the cache-admission plan RNG, so the
/// plan replay cannot collide with any training-side RNG stream.
const HEAT_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Where the server keeps base embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Materialise the whole embedding table in memory at load time.
    InMemory,
    /// Serve out of core from the checkpoint's partition snapshot, behind a
    /// byte-budgeted hot-partition read cache (requires a disk checkpoint).
    ReadCache {
        /// Maximum bytes of partition values the cache may hold resident.
        budget_bytes: u64,
    },
}

/// Configuration for [`Server::from_checkpoint_with`].
#[derive(Clone, Default)]
pub struct ServeConfig {
    mode: Option<ServeMode>,
    telemetry: Telemetry,
}

impl ServeConfig {
    /// Serve from a fully materialised in-memory table (the default).
    pub fn in_memory() -> Self {
        ServeConfig {
            mode: Some(ServeMode::InMemory),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Serve out of core behind a read cache holding at most `budget_bytes`
    /// of partition values.
    pub fn read_cache(budget_bytes: u64) -> Self {
        ServeConfig {
            mode: Some(ServeMode::ReadCache { budget_bytes }),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a [`Telemetry`] recorder: per-query spans, cache counters and
    /// latency histograms record into the cloned handle. Recording reads only
    /// monotonic clocks, so query results are unaffected.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }
}

/// One ranked query answer: a node and its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The predicted node.
    pub node: NodeId,
    /// Its score (DistMult score for top-k, dot-product similarity for k-NN).
    pub score: f32,
}

/// Deterministic ranking: score descending (IEEE total order), then node id
/// ascending. The tie-break makes top-k/k-NN results independent of chunking
/// and thread count even when distinct nodes score exactly equal.
fn rank_order(a: &Prediction, b: &Prediction) -> Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.node.cmp(&b.node))
}

/// Merges `fresh` candidates into the running `best` list, keeping the `k`
/// highest under [`rank_order`].
fn merge_top_k(best: &mut Vec<Prediction>, fresh: impl IntoIterator<Item = Prediction>, k: usize) {
    best.extend(fresh);
    best.sort_unstable_by(rank_order);
    best.truncate(k);
}

/// A read-only serving handle over one loaded checkpoint. Shareable across
/// threads (`Server: Send + Sync`); all query methods take `&self`.
pub struct Server {
    decoder: DistMult,
    backend: Backend,
    dim: usize,
    num_nodes: u64,
    num_relations: usize,
    telemetry: Telemetry,
    q_pairwise: Counter,
    q_topk: Counter,
    q_knn: Counter,
    lat_pairwise: Histogram,
    lat_topk: Histogram,
    lat_knn: Histogram,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("num_nodes", &self.num_nodes)
            .field("num_relations", &self.num_relations)
            .field("dim", &self.dim)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Opens the newest checkpoint under `root` and serves it from memory
    /// with telemetry disabled. See [`Server::from_checkpoint_with`].
    pub fn from_checkpoint(root: impl AsRef<Path>) -> Result<Self> {
        Self::from_checkpoint_with(root, ServeConfig::in_memory())
    }

    /// Opens the newest checkpoint under `root` (the directory passed to
    /// `checkpoint_to` during training), rebuilds the DistMult decoder
    /// read-only from the manifest's blobs, and wires up the embedding
    /// backend selected by `config`.
    ///
    /// Fails with a typed [`StorageError`] when the checkpoint was written by
    /// a different task, carries an encoder (see the crate docs), or lacks
    /// the partition snapshot a [`ServeMode::ReadCache`] needs.
    pub fn from_checkpoint_with(root: impl AsRef<Path>, config: ServeConfig) -> Result<Self> {
        let ckpt = Checkpoint::open(root)?;
        if ckpt.task_slug != "lp" {
            return Err(StorageError::checkpoint(format!(
                "serving requires a link-prediction checkpoint, found task {:?}",
                ckpt.task_slug
            )));
        }
        if ckpt.model.encoder != EncoderKind::None || ckpt.model.num_layers != 0 {
            return Err(StorageError::checkpoint(
                "serving requires a decoder-only (DistMult) checkpoint: encoder-bearing \
                 models have no deterministic serving semantics (see marius_serve docs)",
            ));
        }
        let dim = ckpt.model.output_dim;
        let telemetry = config.telemetry;

        // Rebuild the decoder: allocate with any seed, then overlay the
        // checkpointed relation embeddings bit-for-bit.
        let rel_blob = ckpt
            .state
            .get("model.decoder.relations.value")
            .ok_or_else(|| {
                StorageError::checkpoint(
                    "checkpoint carries no DistMult relation blob (model.decoder.relations.value)",
                )
            })?;
        let (num_relations, rel_dim) = rel_blob.shape();
        if rel_dim != dim {
            return Err(StorageError::checkpoint(format!(
                "relation blob dimension {rel_dim} does not match the model dimension {dim}"
            )));
        }
        let rel_values = rel_blob.as_f32()?;
        let mut decoder = DistMult::new(num_relations, dim, &mut StdRng::seed_from_u64(0));
        decoder.relation_param_mut().value = Tensor::from_vec(rel_values, num_relations, dim);

        let num_nodes = ckpt.dataset_spec.num_nodes;
        let mode = config.mode.unwrap_or(ServeMode::InMemory);
        let backend = match &ckpt.storage {
            StorageKind::InMemory => match mode {
                ServeMode::InMemory => {
                    let flat =
                        ckpt.state
                            .require_f32("source.table.values", num_nodes as usize, dim)?;
                    Backend::in_memory(flat)
                }
                ServeMode::ReadCache { .. } => {
                    return Err(StorageError::checkpoint(
                        "read-cache serving needs an out-of-core checkpoint with a partition \
                         snapshot; this checkpoint trained in memory",
                    ))
                }
            },
            StorageKind::Disk(disk) => {
                if !ckpt.has_store_snapshot {
                    return Err(StorageError::checkpoint(
                        "checkpoint carries no partition snapshot to serve from",
                    ));
                }
                // Replay the partition assignment exactly as training derived
                // it: the assignment draw is the trainer RNG's first use, so
                // seeding with the training seed and replaying that prefix
                // recovers the node → partition map without reading the graph.
                let mut rng = StdRng::seed_from_u64(ckpt.train.seed);
                let assignment = Partitioner::new(disk.num_partitions)
                    .map_err(|e| StorageError::InvalidPlan {
                        reason: format!("cannot replay the partition assignment: {e}"),
                    })?
                    .random(num_nodes, &mut rng);
                let store =
                    PartitionStore::open(ckpt.dir.join("partitions"))?.with_telemetry(&telemetry);
                match mode {
                    ServeMode::InMemory => {
                        let flat = read_all_embeddings(&store, &assignment, dim)?;
                        Backend::in_memory(flat)
                    }
                    ServeMode::ReadCache { budget_bytes } => {
                        let heat = heat_order(
                            disk,
                            &mut StdRng::seed_from_u64(ckpt.train.seed ^ HEAT_SEED_SALT),
                        )?;
                        let rows: Vec<usize> = assignment.partition_sizes();
                        let cache = ReadCache::new(&heat, &rows, dim, budget_bytes, &telemetry);
                        Backend::out_of_core(store, assignment, cache)
                    }
                }
            }
        };

        let latency_bounds: Vec<u64> = (0..=20).map(|e| 1u64 << e).collect();
        Ok(Server {
            decoder,
            backend,
            dim,
            num_nodes,
            num_relations,
            q_pairwise: telemetry.counter("server.queries.pairwise"),
            q_topk: telemetry.counter("server.queries.topk"),
            q_knn: telemetry.counter("server.queries.knn"),
            lat_pairwise: telemetry.histogram("server.latency_us.pairwise", &latency_bounds),
            lat_topk: telemetry.histogram("server.latency_us.topk", &latency_bounds),
            lat_knn: telemetry.histogram("server.latency_us.knn", &latency_bounds),
            telemetry,
        })
    }

    /// Number of nodes in the served graph.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Number of relation types the decoder knows.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The telemetry recorder queries report into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of partitions the read cache admits, when serving out of core.
    pub fn cache_admitted_partitions(&self) -> Option<usize> {
        self.backend.cache().map(ReadCache::admitted_partitions)
    }

    /// Bytes the read cache's admitted set occupies once resident, when
    /// serving out of core (always within the configured budget).
    pub fn cache_admitted_bytes(&self) -> Option<u64> {
        self.backend.cache().map(ReadCache::admitted_bytes)
    }

    /// The read cache's configured byte budget, when serving out of core.
    pub fn cache_budget_bytes(&self) -> Option<u64> {
        self.backend.cache().map(ReadCache::budget_bytes)
    }

    /// Scores one `(source, relation, destination)` triple.
    pub fn score(&self, src: NodeId, rel: RelId, dst: NodeId) -> Result<f32> {
        Ok(self.score_pairs(&[(src, rel, dst)])?[0])
    }

    /// Scores a batch of triples through the training decoder kernel.
    /// Relation ids wrap modulo the relation count, matching training.
    pub fn score_pairs(&self, triples: &[(NodeId, RelId, NodeId)]) -> Result<Vec<f32>> {
        let start = Instant::now();
        let mut scope = self.telemetry.scope("server");
        scope.begin("server.pairwise", triples.len() as i64, NO_LABEL);
        let out = self.score_pairs_inner(triples);
        scope.end();
        self.q_pairwise.incr();
        self.lat_pairwise.record(elapsed_us(start));
        out
    }

    fn score_pairs_inner(&self, triples: &[(NodeId, RelId, NodeId)]) -> Result<Vec<f32>> {
        if triples.is_empty() {
            return Ok(Vec::new());
        }
        let srcs: Vec<NodeId> = triples.iter().map(|&(s, _, _)| s).collect();
        let rels: Vec<RelId> = triples.iter().map(|&(_, r, _)| r).collect();
        let dsts: Vec<NodeId> = triples.iter().map(|&(_, _, d)| d).collect();
        let src_t = self.gather(&srcs)?;
        let dst_t = self.gather(&dsts)?;
        let scores = self.decoder.score_positive(&src_t, &rels, &dst_t);
        Ok((0..triples.len()).map(|i| scores.get(i, 0)).collect())
    }

    /// Top-k tail prediction `(src, rel, ?)` over every node in the graph,
    /// ranked score-descending with ties broken by ascending node id.
    pub fn top_k(&self, src: NodeId, rel: RelId, k: usize) -> Result<Vec<Prediction>> {
        self.top_k_query(src, rel, k, None)
    }

    /// Top-k tail prediction restricted to an explicit candidate list.
    pub fn top_k_among(
        &self,
        src: NodeId,
        rel: RelId,
        k: usize,
        candidates: &[NodeId],
    ) -> Result<Vec<Prediction>> {
        self.top_k_query(src, rel, k, Some(candidates))
    }

    fn top_k_query(
        &self,
        src: NodeId,
        rel: RelId,
        k: usize,
        candidates: Option<&[NodeId]>,
    ) -> Result<Vec<Prediction>> {
        let start = Instant::now();
        let mut scope = self.telemetry.scope("server");
        scope.begin("server.topk", k as i64, NO_LABEL);
        let out = self.top_k_inner(src, rel, k, candidates);
        scope.end();
        self.q_topk.incr();
        self.lat_topk.record(elapsed_us(start));
        out
    }

    fn top_k_inner(
        &self,
        src: NodeId,
        rel: RelId,
        k: usize,
        candidates: Option<&[NodeId]>,
    ) -> Result<Vec<Prediction>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let src_t = self.gather(&[src])?;
        let mut best: Vec<Prediction> = Vec::with_capacity(k + SCORE_CHUNK);
        self.for_each_candidate_chunk(candidates, |chunk, server| {
            let negs = server.gather(chunk)?;
            let scores = server.decoder.score_negatives(&src_t, &[rel], &negs);
            merge_top_k(
                &mut best,
                chunk.iter().enumerate().map(|(i, &node)| Prediction {
                    node,
                    score: scores.get(0, i),
                }),
                k,
            );
            Ok(())
        })?;
        Ok(best)
    }

    /// The `k` nearest neighbours of `node` in the embedding table under
    /// dot-product similarity, excluding `node` itself; ranked
    /// similarity-descending with ties broken by ascending node id.
    pub fn knn(&self, node: NodeId, k: usize) -> Result<Vec<Prediction>> {
        let start = Instant::now();
        let mut scope = self.telemetry.scope("server");
        scope.begin("server.knn", k as i64, NO_LABEL);
        let out = self.knn_inner(node, k);
        scope.end();
        self.q_knn.incr();
        self.lat_knn.record(elapsed_us(start));
        out
    }

    fn knn_inner(&self, node: NodeId, k: usize) -> Result<Vec<Prediction>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let query = self.gather(&[node])?.transpose(); // (dim, 1)
        let mut best: Vec<Prediction> = Vec::with_capacity(k + SCORE_CHUNK);
        self.for_each_candidate_chunk(None, |chunk, server| {
            let rows = server.gather(chunk)?;
            let sims = rows.matmul(&query); // (chunk, 1)
            merge_top_k(
                &mut best,
                chunk
                    .iter()
                    .enumerate()
                    .filter(|&(_, &cand)| cand != node)
                    .map(|(i, &cand)| Prediction {
                        node: cand,
                        score: sims.get(i, 0),
                    }),
                k,
            );
            Ok(())
        })?;
        Ok(best)
    }

    /// Runs `f` over the candidate set in [`SCORE_CHUNK`]-sized slices —
    /// either the explicit list or every node id in order.
    fn for_each_candidate_chunk(
        &self,
        candidates: Option<&[NodeId]>,
        mut f: impl FnMut(&[NodeId], &Self) -> Result<()>,
    ) -> Result<()> {
        match candidates {
            Some(list) => {
                for chunk in list.chunks(SCORE_CHUNK) {
                    f(chunk, self)?;
                }
            }
            None => {
                let mut start = 0u64;
                while start < self.num_nodes {
                    let end = (start + SCORE_CHUNK as u64).min(self.num_nodes);
                    let chunk: Vec<NodeId> = (start..end).collect();
                    f(&chunk, self)?;
                    start = end;
                }
            }
        }
        Ok(())
    }

    fn gather(&self, nodes: &[NodeId]) -> Result<Tensor> {
        self.backend.gather(nodes, self.num_nodes, self.dim)
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Ranks partitions hottest-first for cache admission by replaying the
/// checkpoint's replacement policy: partitions a COMET/BETA epoch plan
/// schedules in more sets (and earlier) are the ones training touched most,
/// and a zipfian read mix over the same assignment concentrates there too.
fn heat_order(disk: &DiskConfig, rng: &mut StdRng) -> Result<Vec<PartitionId>> {
    let p = disk.num_partitions;
    let plan = match disk.policy {
        PolicyKind::Comet => {
            if disk.num_logical == 0 {
                CometPolicy::auto(p, disk.buffer_capacity).plan(p, rng)?
            } else {
                CometPolicy::new(disk.buffer_capacity, disk.num_logical).plan(p, rng)?
            }
        }
        PolicyKind::Beta => BetaPolicy::new(disk.buffer_capacity).plan(p, rng)?,
        PolicyKind::NodeCache => {
            return Err(StorageError::checkpoint(
                "node-cache checkpoints belong to node classification and cannot be served",
            ))
        }
    };
    let mut uses = vec![0usize; p as usize];
    let mut first_seen = vec![usize::MAX; p as usize];
    for (step, set) in plan.partition_sets.iter().enumerate() {
        for &pid in set {
            uses[pid as usize] += 1;
            first_seen[pid as usize] = first_seen[pid as usize].min(step);
        }
    }
    let mut order: Vec<PartitionId> = (0..p).collect();
    order.sort_by_key(|&pid| {
        (
            usize::MAX - uses[pid as usize],
            first_seen[pid as usize],
            pid,
        )
    });
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_order_breaks_score_ties_by_node_id() {
        let mut preds = [
            Prediction {
                node: 9,
                score: 1.0,
            },
            Prediction {
                node: 2,
                score: 1.0,
            },
            Prediction {
                node: 5,
                score: 2.0,
            },
            Prediction {
                node: 7,
                score: 0.5,
            },
        ];
        preds.sort_by(rank_order);
        let ids: Vec<NodeId> = preds.iter().map(|p| p.node).collect();
        assert_eq!(ids, vec![5, 2, 9, 7]);
    }

    #[test]
    fn merge_top_k_is_chunking_invariant() {
        let all: Vec<Prediction> = (0..100)
            .map(|i| Prediction {
                node: i,
                score: ((i * 37) % 13) as f32,
            })
            .collect();
        let mut one_shot = Vec::new();
        merge_top_k(&mut one_shot, all.iter().copied(), 7);
        let mut chunked = Vec::new();
        for chunk in all.chunks(9) {
            merge_top_k(&mut chunked, chunk.iter().copied(), 7);
        }
        assert_eq!(one_shot, chunked);
    }

    #[test]
    fn heat_order_is_deterministic_and_complete() {
        let disk = DiskConfig::comet(16, 4);
        let a = heat_order(&disk, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = heat_order(&disk, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn node_cache_policy_is_rejected_for_serving() {
        let disk = DiskConfig::node_cache(8, 4);
        let err = heat_order(&disk, &mut StdRng::seed_from_u64(1)).unwrap_err();
        assert!(format!("{err}").contains("node classification"), "{err}");
    }
}
