//! Embedding backends: where a server's node representations come from.
//!
//! Both backends serve the *same bytes* for the same node — the in-memory
//! backend materialises the whole table up front, the out-of-core backend
//! pages partitions through [`ReadCache`] — so switching backends can never
//! change a query result, only its latency profile.

use std::collections::HashMap;
use std::sync::Arc;

use marius_graph::{NodeId, PartitionAssignment, PartitionId};
use marius_storage::{PartitionStore, Result, StorageError};
use marius_tensor::Tensor;

use crate::cache::ReadCache;

// One Backend exists per Server and lives on the heap-heavy side anyway, so
// the variant size gap has no cost worth an indirection.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Backend {
    /// The full `num_nodes × dim` table resident in memory.
    InMemory { flat: Vec<f32> },
    /// A shared immutable partition-store view behind the read cache.
    OutOfCore {
        store: PartitionStore,
        assignment: PartitionAssignment,
        /// `node id → (partition, row within the partition block)`, so a
        /// gather is one cache fetch plus one row copy per node.
        node_location: Vec<(PartitionId, u32)>,
        cache: ReadCache,
    },
}

impl Backend {
    pub(crate) fn in_memory(flat: Vec<f32>) -> Self {
        Backend::InMemory { flat }
    }

    pub(crate) fn out_of_core(
        store: PartitionStore,
        assignment: PartitionAssignment,
        cache: ReadCache,
    ) -> Self {
        let mut node_location = vec![(0u32, 0u32); assignment.num_nodes() as usize];
        for p in 0..assignment.num_partitions() {
            for (i, &node) in assignment.nodes_in(p).iter().enumerate() {
                node_location[node as usize] = (p, i as u32);
            }
        }
        Backend::OutOfCore {
            store,
            assignment,
            node_location,
            cache,
        }
    }

    pub(crate) fn cache(&self) -> Option<&ReadCache> {
        match self {
            Backend::InMemory { .. } => None,
            Backend::OutOfCore { cache, .. } => Some(cache),
        }
    }

    /// The backing partition store, when serving out of core.
    pub(crate) fn store(&self) -> Option<&PartitionStore> {
        match self {
            Backend::InMemory { .. } => None,
            Backend::OutOfCore { store, .. } => Some(store),
        }
    }

    /// Gathers `nodes` into a `(len, dim)` tensor. Out of core, each distinct
    /// partition is fetched once per gather (one hit/miss/bypass outcome per
    /// touched partition), then rows are copied out of the shared blocks.
    pub(crate) fn gather(&self, nodes: &[NodeId], num_nodes: u64, dim: usize) -> Result<Tensor> {
        if let Some(&bad) = nodes.iter().find(|&&n| n >= num_nodes) {
            return Err(StorageError::InvalidPlan {
                reason: format!("query node {bad} is out of range (graph has {num_nodes} nodes)"),
            });
        }
        let mut out = Tensor::zeros(nodes.len(), dim);
        match self {
            Backend::InMemory { flat } => {
                for (i, &node) in nodes.iter().enumerate() {
                    let start = node as usize * dim;
                    out.row_mut(i).copy_from_slice(&flat[start..start + dim]);
                }
            }
            Backend::OutOfCore {
                store,
                assignment,
                node_location,
                cache,
            } => {
                let mut resident: HashMap<PartitionId, Arc<Vec<f32>>> = HashMap::new();
                for (i, &node) in nodes.iter().enumerate() {
                    let (p, row) = node_location[node as usize];
                    let block = match resident.get(&p) {
                        Some(block) => block,
                        None => {
                            let rows = assignment.nodes_in(p).len();
                            let block = cache.fetch(store, p, rows, dim)?;
                            resident.entry(p).or_insert(block)
                        }
                    };
                    let start = row as usize * dim;
                    out.row_mut(i).copy_from_slice(&block[start..start + dim]);
                }
            }
        }
        Ok(out)
    }
}
