//! Deterministic zipfian query workloads for serving tests and benches.
//!
//! Real embedding-serving traffic is heavily skewed — a few hub entities
//! absorb most queries — which is exactly the regime where a hot-partition
//! read cache pays off. [`ZipfWorkload`] reproduces that skew from a seed:
//! node draws follow `P(rank r) ∝ (r + 1)^{-exponent}` with rank equal to
//! node id, and the draw sequence is a pure function of `(num_nodes,
//! num_relations, exponent, seed)`, so two runs over the same workload issue
//! bit-identical query streams.

use marius_graph::{NodeId, RelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded zipfian query generator.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    /// Cumulative distribution over node ranks; `cdf[n]` is the probability
    /// of drawing a rank `<= n`, with the final entry exactly 1.
    cdf: Vec<f64>,
    num_relations: u32,
    rng: StdRng,
}

impl ZipfWorkload {
    /// Builds a workload over `num_nodes` nodes and `num_relations` relation
    /// types with the given skew `exponent` (0 = uniform; 1 = classic zipf).
    pub fn new(num_nodes: u64, num_relations: u32, exponent: f64, seed: u64) -> Self {
        assert!(num_nodes > 0, "workload needs at least one node");
        let mut cdf = Vec::with_capacity(num_nodes as usize);
        let mut acc = 0.0f64;
        for rank in 0..num_nodes {
            acc += (rank as f64 + 1.0).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        *cdf.last_mut().expect("non-empty cdf") = 1.0;
        ZipfWorkload {
            cdf,
            num_relations: num_relations.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a zipf-distributed node id (low ids are hot).
    pub fn next_node(&mut self) -> NodeId {
        let u: f64 = self.rng.gen();
        self.cdf.partition_point(|&c| c < u) as NodeId
    }

    /// Draws a uniformly distributed relation id.
    pub fn next_relation(&mut self) -> RelId {
        self.rng.gen_range(0..self.num_relations)
    }

    /// Draws one `(source, relation, destination)` query triple: zipfian
    /// endpoints, uniform relation.
    pub fn next_triple(&mut self) -> (NodeId, RelId, NodeId) {
        let src = self.next_node();
        let rel = self.next_relation();
        let dst = self.next_node();
        (src, rel, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_yields_identical_streams() {
        let mut a = ZipfWorkload::new(500, 11, 1.0, 42);
        let mut b = ZipfWorkload::new(500, 11, 1.0, 42);
        for _ in 0..200 {
            assert_eq!(a.next_triple(), b.next_triple());
        }
    }

    #[test]
    fn skewed_draws_prefer_low_node_ids() {
        let mut w = ZipfWorkload::new(1000, 1, 1.2, 7);
        let draws: Vec<NodeId> = (0..2000).map(|_| w.next_node()).collect();
        let low = draws.iter().filter(|&&n| n < 100).count();
        let high = draws.iter().filter(|&&n| n >= 900).count();
        assert!(
            low > 5 * high.max(1),
            "zipf skew missing: {low} low vs {high} high"
        );
        assert!(draws.iter().all(|&n| n < 1000));
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let mut w = ZipfWorkload::new(10, 3, 0.0, 9);
        let mut seen = [0usize; 10];
        for _ in 0..5000 {
            seen[w.next_node() as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 300), "{seen:?}");
        assert!(w.next_relation() < 3);
    }
}
