//! Typed serving errors: the query path's transient/permanent taxonomy.
//!
//! Load-time failures (missing checkpoints, encoder-bearing models, absent
//! partition snapshots) keep surfacing as [`StorageError`] through
//! [`crate::Server::from_checkpoint_with`] — they describe the checkpoint,
//! not a query. Query-time failures instead surface as [`ServeError`], which
//! adds the two failure classes a production read path needs that storage has
//! no word for: admission rejections ([`ServeError::Overloaded`]) and missed
//! deadlines ([`ServeError::DeadlineExceeded`]). Storage faults that escape
//! every retry layer are classified through [`StorageError::is_transient`]
//! into [`ServeError::Transient`] (safe to resubmit) or
//! [`ServeError::Permanent`] (resubmitting cannot help).

use std::time::Duration;

use marius_storage::StorageError;

/// Result alias for query-path operations.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// A typed query failure. See the module docs for the taxonomy.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control shed the query: the in-flight budget was full when
    /// it arrived. Safe to resubmit once load drains.
    Overloaded {
        /// Queries in flight at rejection time.
        in_flight: u64,
        /// The configured in-flight budget.
        limit: u64,
    },
    /// The query ran past its deadline and was abandoned between work chunks.
    DeadlineExceeded {
        /// Time elapsed when the deadline check fired.
        elapsed: Duration,
        /// The configured per-query deadline.
        deadline: Duration,
    },
    /// A transient storage fault survived every retry layer below this query.
    /// Safe to resubmit; the underlying reason (including the spent retry
    /// budget) is preserved.
    Transient {
        /// Root-cause description.
        reason: String,
    },
    /// A permanent fault — dead device, corrupt snapshot, failed checksum
    /// verification. Resubmitting the query cannot help.
    Permanent {
        /// Root-cause description.
        reason: String,
    },
    /// The query itself is malformed (for example an out-of-range node id).
    InvalidQuery {
        /// What was wrong with the query.
        reason: String,
    },
}

impl ServeError {
    /// Whether resubmitting the query later may succeed. Overload and
    /// deadline rejections are retryable by the client; permanent faults and
    /// malformed queries are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::Transient { .. }
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { in_flight, limit } => write!(
                f,
                "query shed: {in_flight} queries in flight at the budget of {limit}"
            ),
            ServeError::DeadlineExceeded { elapsed, deadline } => write!(
                f,
                "deadline exceeded: {elapsed:?} elapsed against a deadline of {deadline:?}"
            ),
            ServeError::Transient { reason } => write!(f, "transient serve error: {reason}"),
            ServeError::Permanent { reason } => write!(f, "permanent serve error: {reason}"),
            ServeError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StorageError> for ServeError {
    fn from(e: StorageError) -> Self {
        if e.is_transient() {
            ServeError::Transient {
                reason: e.to_string(),
            }
        } else if matches!(e, StorageError::InvalidPlan { .. }) {
            // The backend reports malformed queries (out-of-range ids)
            // through InvalidPlan; everything else non-transient is a real
            // storage-side failure.
            ServeError::InvalidQuery {
                reason: e.to_string(),
            }
        } else {
            ServeError::Permanent {
                reason: e.to_string(),
            }
        }
    }
}

/// Lets facade callers (`marius::Result` is `marius_storage::Result`) use
/// `?` on query results: the transient classification round-trips, everything
/// else lands in the storage taxonomy's closest variant.
impl From<ServeError> for StorageError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Transient { reason } => StorageError::Transient { reason },
            ServeError::InvalidQuery { reason } => StorageError::InvalidPlan { reason },
            other => StorageError::Pipeline {
                stage: "serve".to_string(),
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_classify_by_transience() {
        let e: ServeError = StorageError::transient("blip").into();
        assert!(matches!(e, ServeError::Transient { .. }) && e.is_transient());

        let e: ServeError = StorageError::checkpoint("bad blob").into();
        assert!(matches!(e, ServeError::Permanent { .. }) && !e.is_transient());

        let e: ServeError = StorageError::InvalidPlan {
            reason: "node 9 out of range".into(),
        }
        .into();
        assert!(matches!(e, ServeError::InvalidQuery { .. }) && !e.is_transient());

        let e: ServeError = StorageError::Io(std::io::Error::other("dead device")).into();
        assert!(matches!(e, ServeError::Permanent { .. }));
    }

    #[test]
    fn admission_errors_are_retryable_by_the_client() {
        assert!(ServeError::Overloaded {
            in_flight: 8,
            limit: 8
        }
        .is_transient());
        assert!(ServeError::DeadlineExceeded {
            elapsed: Duration::from_millis(3),
            deadline: Duration::from_millis(1),
        }
        .is_transient());
    }

    #[test]
    fn round_trip_to_storage_preserves_transience() {
        let e: StorageError = ServeError::Transient {
            reason: "still flaky".into(),
        }
        .into();
        assert!(e.is_transient());
        let e: StorageError = ServeError::Permanent {
            reason: "dead".into(),
        }
        .into();
        assert!(!e.is_transient());
        assert!(format!("{e}").contains("serve"), "{e}");
    }
}
