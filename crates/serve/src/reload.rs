//! Hot checkpoint reload: the epoch-versioned snapshot handle and the
//! background checkpoint watcher.
//!
//! A [`SnapshotHandle`] is an ArcSwap-style cell: readers clone the current
//! `Arc<Snapshot>` under a momentary read lock (no IO, no allocation beyond
//! the refcount bump) and then work entirely against that pinned snapshot, so
//! an in-flight query finishes against the epoch it started on even if a
//! reload swaps the handle mid-query. Writers swap the whole `Arc` at once —
//! there is no observable intermediate state, hence no torn answers.
//!
//! [`CheckpointWatcher`] turns [`crate::Server::reload`] into a continuous
//! train→checkpoint→serve loop: a background thread polls the checkpoint
//! root and swaps in each new `epoch-NNNNNN/` version as training publishes
//! it. Transient reload failures (a checkpoint mid-write, a flaky device) are
//! counted and retried at the next poll; the previous snapshot keeps serving
//! throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{Server, Snapshot};

/// ArcSwap-style holder of the server's current loaded checkpoint.
pub(crate) struct SnapshotHandle {
    inner: RwLock<Arc<Snapshot>>,
}

impl SnapshotHandle {
    pub(crate) fn new(snapshot: Snapshot) -> Self {
        SnapshotHandle {
            inner: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// Pins the current snapshot: the returned `Arc` stays valid (and keeps
    /// its backing data alive) across any number of concurrent reloads.
    pub(crate) fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically publishes a new snapshot. In-flight readers keep their
    /// pinned `Arc`; subsequent loads observe the new one.
    pub(crate) fn store(&self, snapshot: Arc<Snapshot>) {
        *self.inner.write().unwrap_or_else(|e| e.into_inner()) = snapshot;
    }
}

/// Handle to the background thread that polls a checkpoint root and hot-swaps
/// new versions into a shared [`Server`]. Obtained from
/// [`Server::watch_checkpoints`]; dropping it (or calling
/// [`CheckpointWatcher::stop`]) stops the thread and joins it.
pub struct CheckpointWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl CheckpointWatcher {
    pub(crate) fn spawn(server: Arc<Server>, poll: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("serve-ckpt-watch".to_string())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    if server.reload().is_err() {
                        // A checkpoint mid-write or a transient device fault:
                        // keep serving the current snapshot and try again at
                        // the next poll.
                        server.note_reload_error();
                    }
                    // Sleep in short slices so stop() returns promptly even
                    // under a long poll interval.
                    let slice = Duration::from_millis(5);
                    let mut slept = Duration::ZERO;
                    while slept < poll && !flag.load(Ordering::Relaxed) {
                        let nap = slice.min(poll - slept);
                        std::thread::sleep(nap);
                        slept += nap;
                    }
                }
            })
            .expect("spawn checkpoint watcher thread");
        CheckpointWatcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the watcher and joins its thread. The server keeps serving its
    /// current snapshot; explicit [`Server::reload`] calls still work.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CheckpointWatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}
