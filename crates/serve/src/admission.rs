//! Admission control: the bounded in-flight budget and per-query deadlines.
//!
//! A production read path degrades *predictably* under overload: rather than
//! queueing without bound (and blowing tail latency for everyone), the server
//! sheds queries that arrive while the in-flight budget is full, and abandons
//! queries that outlive their deadline at the next chunk boundary. Both
//! outcomes are typed rejections ([`crate::ServeError::Overloaded`] /
//! [`crate::ServeError::DeadlineExceeded`]) the client can act on, and both
//! count into always-on atomics (visible through [`crate::Server::health`])
//! plus the `server.shed` telemetry counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use marius_telemetry::{Counter, Telemetry};

use crate::error::{ServeError, ServeResult};

/// The in-flight budget and deadline configuration of one server.
pub(crate) struct Admission {
    /// Maximum concurrently admitted queries (`u64::MAX` = unbounded).
    limit: u64,
    /// Per-query deadline, if any.
    deadline: Option<Duration>,
    in_flight: AtomicU64,
    /// Total queries shed (always-on; telemetry may be disabled).
    shed_total: AtomicU64,
    shed: Counter,
}

impl Admission {
    pub(crate) fn new(
        limit: Option<u64>,
        deadline: Option<Duration>,
        telemetry: &Telemetry,
    ) -> Self {
        Admission {
            // A zero budget would deterministically reject everything;
            // clamp to one so a misconfigured server still drains work.
            limit: limit.unwrap_or(u64::MAX).max(1),
            deadline,
            in_flight: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            shed: telemetry.counter("server.shed"),
        }
    }

    /// Admits one query, or sheds it when the budget is full. The returned
    /// permit releases the slot on drop, so every exit path (success, error,
    /// panic unwind) gives the slot back.
    pub(crate) fn admit(&self) -> ServeResult<InFlightPermit<'_>> {
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            self.shed.incr();
            return Err(ServeError::Overloaded {
                in_flight: prev,
                limit: self.limit,
            });
        }
        Ok(InFlightPermit {
            in_flight: &self.in_flight,
        })
    }

    /// Starts the deadline clock for one admitted query.
    pub(crate) fn clock(&self) -> QueryClock {
        QueryClock {
            start: Instant::now(),
            deadline: self.deadline,
        }
    }

    pub(crate) fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    pub(crate) fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// The configured budget, `None` when unbounded.
    pub(crate) fn limit(&self) -> Option<u64> {
        (self.limit != u64::MAX).then_some(self.limit)
    }

    pub(crate) fn deadline(&self) -> Option<Duration> {
        self.deadline
    }
}

/// One admitted query's slot in the in-flight budget.
#[derive(Debug)]
pub(crate) struct InFlightPermit<'a> {
    in_flight: &'a AtomicU64,
}

impl Drop for InFlightPermit<'_> {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The deadline clock of one query, checked between work chunks so a slow
/// query is abandoned at the next boundary instead of running to completion.
pub(crate) struct QueryClock {
    start: Instant,
    deadline: Option<Duration>,
}

impl QueryClock {
    pub(crate) fn check(&self) -> ServeResult<()> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        let elapsed = self.start.elapsed();
        // A zero deadline trips deterministically (useful in tests and as a
        // drain-everything switch); otherwise trip once elapsed passes it.
        if deadline.is_zero() || elapsed > deadline {
            return Err(ServeError::DeadlineExceeded { elapsed, deadline });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sheds_excess_and_permits_release_on_drop() {
        let telemetry = Telemetry::enabled();
        let admission = Admission::new(Some(2), None, &telemetry);
        let a = admission.admit().unwrap();
        let _b = admission.admit().unwrap();
        assert_eq!(admission.in_flight(), 2);
        let err = admission.admit().unwrap_err();
        assert!(matches!(
            err,
            ServeError::Overloaded {
                in_flight: 2,
                limit: 2
            }
        ));
        assert_eq!(admission.shed_total(), 1);
        drop(a);
        assert_eq!(admission.in_flight(), 1);
        let _c = admission.admit().unwrap();
        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("server.shed"), Some(1));
    }

    #[test]
    fn unbounded_admission_never_sheds() {
        let telemetry = Telemetry::disabled();
        let admission = Admission::new(None, None, &telemetry);
        assert_eq!(admission.limit(), None);
        let permits: Vec<_> = (0..64).map(|_| admission.admit().unwrap()).collect();
        assert_eq!(admission.in_flight(), 64);
        drop(permits);
        assert_eq!(admission.in_flight(), 0);
    }

    #[test]
    fn zero_deadline_trips_deterministically() {
        let telemetry = Telemetry::disabled();
        let admission = Admission::new(None, Some(Duration::ZERO), &telemetry);
        let clock = admission.clock();
        assert!(matches!(
            clock.check(),
            Err(ServeError::DeadlineExceeded { .. })
        ));
        let generous = Admission::new(None, Some(Duration::from_secs(3600)), &telemetry);
        assert!(generous.clock().check().is_ok());
        let unbounded = Admission::new(None, None, &telemetry);
        assert!(unbounded.clock().check().is_ok());
    }
}
