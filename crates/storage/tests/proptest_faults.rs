//! Property-based tests of the robustness layer: the bounded-backoff retry
//! policy (deterministic per seed, total delay bounded, attempt count capped
//! by the budget) and the deterministic fault injector (identical replay from
//! the same plan, consecutive-failure cap always respected).

use marius_storage::retry::with_retry;
use marius_storage::{IoFaultPlan, RetryPolicy, StorageError};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A policy with microsecond-scale delays so property runs stay fast.
fn policy(max_retries: u32, jitter_seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_delay: Duration::from_micros(1),
        max_delay: Duration::from_micros(64),
        jitter_seed,
    }
}

/// Drives an injector through a fixed schedule of read/write checks and
/// records each operation's outcome. `keys` selects the logical operation
/// key, `writes` whether the op is a write.
fn replay(plan: IoFaultPlan, ops: &[(u8, u8)]) -> Vec<bool> {
    let injector = plan.build();
    ops.iter()
        .map(|&(key, write)| {
            let key = format!("partition/{key}");
            if write == 1 {
                injector.check_write(&key, |_| {}).is_err()
            } else {
                injector.check_read(&key).is_err()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The backoff schedule is a pure function of (policy, op seed, attempt):
    /// recomputing any attempt's delay gives the same answer, and delays never
    /// exceed the configured ceiling.
    #[test]
    fn backoff_is_deterministic_and_capped(
        jitter_seed in 0u64..1_000_000,
        op in 0u64..1_000,
        max_retries in 1u32..8,
    ) {
        let p = policy(max_retries, jitter_seed);
        let op_seed = p.op_seed(&format!("partition/{op}"));
        for attempt in 1..=max_retries {
            let d = p.delay(op_seed, attempt);
            prop_assert_eq!(d, p.delay(op_seed, attempt), "attempt {} not reproducible", attempt);
            prop_assert!(d <= p.max_delay, "attempt {} delay {:?} above ceiling", attempt, d);
            prop_assert!(!d.is_zero());
        }
    }

    /// Summing the worst case over every attempt never exceeds the policy's
    /// advertised total-delay bound.
    #[test]
    fn total_backoff_delay_is_bounded(
        jitter_seed in 0u64..1_000_000,
        op in 0u64..1_000,
        max_retries in 1u32..8,
    ) {
        let p = policy(max_retries, jitter_seed);
        let op_seed = p.op_seed(&format!("bucket/{op}_0"));
        let total: Duration = (1..=max_retries).map(|a| p.delay(op_seed, a)).sum();
        prop_assert!(
            total <= p.max_total_delay(),
            "summed delay {:?} above bound {:?}", total, p.max_total_delay()
        );
    }

    /// `with_retry` never attempts more than the budget: an operation that
    /// fails transiently `k` times then succeeds consumes exactly
    /// `min(k, budget)` retries, and only exhausts the budget when `k`
    /// exceeds it.
    #[test]
    fn retry_count_never_exceeds_the_budget(
        failures in 0u32..10,
        max_retries in 0u32..6,
        jitter_seed in 0u64..1_000_000,
    ) {
        let p = policy(max_retries, jitter_seed);
        let retries = AtomicU64::new(0);
        let mut remaining = failures;
        let result = with_retry(&p, p.op_seed("partition/0"), &retries, || {
            if remaining > 0 {
                remaining -= 1;
                Err(StorageError::transient("blip"))
            } else {
                Ok(())
            }
        });
        let spent = retries.load(Ordering::Relaxed);
        prop_assert!(spent <= u64::from(max_retries));
        if failures <= max_retries {
            prop_assert!(result.is_ok());
            prop_assert_eq!(spent, u64::from(failures));
        } else {
            let err = result.unwrap_err();
            prop_assert!(err.is_transient(), "exhaustion keeps the transient class: {err}");
            if max_retries > 0 {
                // A zero-retry policy surfaces the raw error; any actual
                // budget notes its exhaustion in the message.
                prop_assert!(format!("{err}").contains("budget"), "{err}");
            }
            prop_assert_eq!(spent, u64::from(max_retries));
        }
    }

    /// Two injectors built from the same plan replay the same op schedule
    /// with bit-identical fault decisions and counters — the property the
    /// chaos suite's reproducibility rests on.
    #[test]
    fn fault_plans_replay_identically(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec((0u8..6, 0u8..2), 200),
    ) {
        let plan = IoFaultPlan {
            read_fail: 0.2,
            write_fail: 0.2,
            torn_write: 0.5,
            ..IoFaultPlan::quiet(seed)
        };
        let first = replay(plan, &ops);
        let second = replay(plan, &ops);
        prop_assert_eq!(first, second);
    }

    /// Distinct seeds produce distinct schedules (the plan actually keys off
    /// its seed rather than collapsing to one sequence).
    #[test]
    fn distinct_seeds_diverge(seed in 0u64..1_000_000) {
        let ops: Vec<(u8, u8)> = (0..200u32).map(|i| ((i % 6) as u8, (i % 2) as u8)).collect();
        let mk = |s: u64| IoFaultPlan {
            read_fail: 0.3,
            write_fail: 0.3,
            ..IoFaultPlan::quiet(s)
        };
        let a = replay(mk(seed), &ops);
        let b = replay(mk(seed ^ 0xdead_beef), &ops);
        // Over 200 ops at 30% fail rate, two independent schedules agreeing
        // everywhere is (effectively) impossible.
        prop_assert!(a != b, "independent seeds produced identical schedules");
    }

    /// No logical operation ever fails more than `max_consecutive` times in a
    /// row, for any cap — the invariant that makes a plan survivable when the
    /// cap sits below the retry budget.
    #[test]
    fn consecutive_failures_never_exceed_the_cap(
        seed in 0u64..1_000_000,
        cap in 1u32..4,
    ) {
        let plan = IoFaultPlan {
            read_fail: 0.9,
            max_consecutive: cap,
            ..IoFaultPlan::quiet(seed)
        };
        let injector = plan.build();
        let mut consecutive = 0u32;
        for _ in 0..300 {
            if injector.check_read("partition/0").is_err() {
                consecutive += 1;
                prop_assert!(consecutive <= cap, "run of {} exceeds cap {}", consecutive, cap);
            } else {
                consecutive = 0;
            }
        }
    }
}
