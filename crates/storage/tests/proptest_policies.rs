//! Property-based tests of the replacement policies: for arbitrary partition
//! counts and buffer capacities, every policy must produce a plan that covers
//! every edge bucket exactly once, never exceeds the buffer, and never assigns a
//! bucket to a set missing one of its partitions.

use marius_storage::policy::ReplacementPolicy;
use marius_storage::{BetaPolicy, CometPolicy, InMemoryPolicy, NodeCachePolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn beta_plans_are_always_valid(
        p in 2u32..24,
        c_frac in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let c = ((p as usize) / c_frac).max(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
        prop_assert!(plan.validate(p, c).is_ok(), "{:?}", plan.validate(p, c));
    }

    #[test]
    fn comet_plans_are_always_valid(
        p in 2u32..24,
        c_frac in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let c = ((p as usize) / c_frac).max(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = CometPolicy::auto(p, c).plan(p, &mut rng).unwrap();
        prop_assert!(plan.validate(p, c).is_ok(), "{:?}", plan.validate(p, c));
    }

    /// COMET's partition loads stay within a constant factor of BETA's for the
    /// same buffer (the paper's claim that the two-level scheme forfeits little IO).
    #[test]
    fn comet_io_within_constant_factor_of_beta(
        p in 4u32..20,
        seed in 0u64..10_000,
    ) {
        let c = (p as usize / 2).max(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let beta = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
        let comet = CometPolicy::auto(p, c).plan(p, &mut rng).unwrap();
        prop_assert!(comet.partition_loads() <= 3 * beta.partition_loads().max(1));
    }

    #[test]
    fn in_memory_plan_always_single_set(p in 1u32..32, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = InMemoryPolicy.plan(p, &mut rng).unwrap();
        prop_assert_eq!(plan.num_sets(), 1);
        prop_assert!(plan.validate(p, p as usize).is_ok());
    }

    /// The node-cache policy always keeps every training partition resident and
    /// never swaps during the epoch.
    #[test]
    fn node_cache_keeps_training_partitions(
        p in 2u32..24,
        k_frac in 2u32..6,
        seed in 0u64..10_000,
    ) {
        let k = (p / k_frac).max(1);
        let c = (k as usize + 2).min(p as usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = NodeCachePolicy::new(c, k).plan(p, &mut rng).unwrap();
        prop_assert_eq!(plan.num_sets(), 1);
        let set = &plan.partition_sets[0];
        for t in 0..k {
            prop_assert!(set.contains(&t));
        }
        prop_assert_eq!(plan.partition_loads(), set.len());
    }
}
