//! The Edge Permutation Bias metric and the auto-tuning rules of paper §6.

use crate::policy::EpochPlan;
use marius_graph::EdgeBucket;

/// Computes the Edge Permutation Bias `B ∈ [0, 1]` of an epoch plan over the
/// actual edge buckets of a graph.
///
/// Following §6: iterate over the plan's `Xᵢ` in order, keeping a cumulative
/// per-node tally of how many of its edges have been processed. Tallies are
/// normalised so that every node ends at 1. After each `Xᵢ` the spread
/// `dᵢ = max_v t_v − min_v t_v` is recorded; `B` is the maximum spread. A high
/// `B` means some nodes had almost all their edges processed before other nodes
/// had any — the correlation that biases SGD.
///
/// `buckets` must be the row-major `p × p` bucket list produced by
/// `marius_graph::Partitioner::build_buckets`.
pub fn edge_permutation_bias(plan: &EpochPlan, buckets: &[EdgeBucket], num_nodes: u64) -> f64 {
    let p = (buckets.len() as f64).sqrt().round() as usize;
    assert_eq!(p * p, buckets.len(), "buckets must form a p x p grid");

    // Final totals per node (only nodes with at least one edge participate).
    let mut totals = vec![0u64; num_nodes as usize];
    for b in buckets {
        for e in &b.edges {
            totals[e.src as usize] += 1;
            totals[e.dst as usize] += 1;
        }
    }

    let mut tallies = vec![0u64; num_nodes as usize];
    let mut bias = 0.0f64;
    for step in &plan.bucket_assignment {
        for &(i, j) in step {
            let bucket = &buckets[i as usize * p + j as usize];
            for e in &bucket.edges {
                tallies[e.src as usize] += 1;
                tallies[e.dst as usize] += 1;
            }
        }
        // Spread of normalised tallies after this step.
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in 0..num_nodes as usize {
            if totals[v] == 0 {
                continue;
            }
            let t = tallies[v] as f64 / totals[v] as f64;
            if t < min {
                min = t;
            }
            if t > max {
                max = t;
            }
        }
        if min.is_finite() && max.is_finite() {
            bias = bias.max(max - min);
        }
    }
    bias
}

/// The configuration chosen by the auto-tuning rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningConfig {
    /// Number of physical partitions `p`.
    pub physical_partitions: u32,
    /// Number of logical partitions `l`.
    pub logical_partitions: u32,
    /// Buffer capacity `c` in physical partitions.
    pub buffer_capacity: usize,
    /// Whether the whole graph fits in CPU memory (in which case disk-based
    /// training is unnecessary and `c = p`).
    pub fits_in_memory: bool,
}

/// Applies the §6 rules to pick `(p, l, c)`.
///
/// * `p = α₄ = min(NO / D, sqrt(EO / D))` — the largest partition count whose
///   smallest disk read still spans a full device block, so more partitions
///   would start paying random-IO penalties without improving the bias further.
/// * `c` — the largest buffer such that `c·PO + 2·c²·EBO + F < CPU` (node
///   partitions plus both sorted copies of the in-memory edge buckets plus a
///   working-memory fudge factor).
/// * `l = 2p / c` — exactly two logical partitions resident at a time, the
///   minimum the swap scheme needs, because fewer logical partitions mean lower
///   bias and fewer partition sets.
#[allow(clippy::too_many_arguments)]
pub fn auto_tune(
    num_nodes: u64,
    feat_dim: usize,
    num_edges: u64,
    bytes_per_edge: u64,
    cpu_mem_bytes: u64,
    disk_block_bytes: u64,
    fudge_bytes: u64,
    learnable_embeddings: bool,
) -> TuningConfig {
    // Learned embeddings carry per-element optimizer state alongside the values
    // (the doubling Table 1 reports), so a partition's footprint is 8 bytes per
    // element instead of 4.
    let bytes_per_element: u64 = if learnable_embeddings { 8 } else { 4 };
    let node_overhead = num_nodes * feat_dim as u64 * bytes_per_element;
    let edge_overhead = num_edges * bytes_per_edge;

    // Everything fits: a single in-memory "partition set".
    if node_overhead + 2 * edge_overhead + fudge_bytes <= cpu_mem_bytes {
        return TuningConfig {
            physical_partitions: 1,
            logical_partitions: 1,
            buffer_capacity: 1,
            fits_in_memory: true,
        };
    }

    let alpha4 = ((node_overhead / disk_block_bytes.max(1)) as f64)
        .min(((edge_overhead / disk_block_bytes.max(1)) as f64).sqrt());
    let p = (alpha4.floor() as u32).clamp(2, 4096);

    let partition_overhead = node_overhead as f64 / p as f64;
    let bucket_overhead = edge_overhead as f64 / (p as f64 * p as f64);
    // Largest c with c·PO + 2·c²·EBO + F < CPU.
    let budget = cpu_mem_bytes.saturating_sub(fudge_bytes) as f64;
    let mut c = 2usize;
    for candidate in (2..=p as usize).rev() {
        let cost = candidate as f64 * partition_overhead
            + 2.0 * (candidate as f64).powi(2) * bucket_overhead;
        if cost < budget {
            c = candidate;
            break;
        }
    }
    let l = ((2 * p as usize).div_ceil(c)).max(2) as u32;

    TuningConfig {
        physical_partitions: p,
        logical_partitions: l.min(p),
        buffer_capacity: c,
        fits_in_memory: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BetaPolicy, CometPolicy, ReplacementPolicy};
    use marius_graph::datasets::{DatasetSpec, ScaledDataset};
    use marius_graph::Partitioner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn buckets_for(p: u32, seed: u64) -> (Vec<marius_graph::EdgeBucket>, u64) {
        let spec = DatasetSpec::fb15k_237().scaled(0.05);
        let data = ScaledDataset::generate(&spec, seed);
        let partitioner = Partitioner::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let assignment = partitioner.random(data.num_nodes(), &mut rng);
        let buckets = partitioner.build_buckets(&data.graph, &assignment).unwrap();
        (buckets, data.num_nodes())
    }

    #[test]
    fn bias_of_in_memory_plan_is_low() {
        // A single step processes everything at once: the spread after the only
        // step is 0 because every node reaches its total simultaneously.
        let (buckets, n) = buckets_for(4, 1);
        let plan = crate::policy::InMemoryPolicy
            .plan(4, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let b = edge_permutation_bias(&plan, &buckets, n);
        assert!(b < 1e-9, "in-memory bias should be ~0, got {b}");
    }

    #[test]
    fn comet_bias_is_lower_than_beta_bias() {
        let p = 16u32;
        let c = 4usize;
        let (buckets, n) = buckets_for(p, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let beta_plan = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
        let comet_plan = CometPolicy::auto(p, c).plan(p, &mut rng).unwrap();
        let beta_bias = edge_permutation_bias(&beta_plan, &buckets, n);
        let comet_bias = edge_permutation_bias(&comet_plan, &buckets, n);
        assert!(
            comet_bias <= beta_bias,
            "COMET bias {comet_bias} should not exceed BETA bias {beta_bias}"
        );
        assert!(
            beta_bias > 0.3,
            "BETA should show substantial bias, got {beta_bias}"
        );
    }

    /// Figure 6c: bias decreases as the number of physical partitions grows.
    #[test]
    fn bias_decreases_with_more_physical_partitions() {
        let c_fraction = 4;
        let mut biases = Vec::new();
        for p in [4u32, 16, 32] {
            let (buckets, n) = buckets_for(p, 10 + p as u64);
            let c = (p as usize / c_fraction).max(2);
            let mut rng = StdRng::seed_from_u64(20 + p as u64);
            let plan = CometPolicy::auto(p, c).plan(p, &mut rng).unwrap();
            biases.push(edge_permutation_bias(&plan, &buckets, n));
        }
        assert!(
            biases[2] <= biases[0] + 0.05,
            "bias should trend downward with more physical partitions: {biases:?}"
        );
    }

    #[test]
    fn bias_is_bounded() {
        let (buckets, n) = buckets_for(8, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let plan = BetaPolicy::new(2).plan(8, &mut rng).unwrap();
        let b = edge_permutation_bias(&plan, &buckets, n);
        assert!((0.0..=1.0).contains(&b));
    }

    #[test]
    fn auto_tune_small_graph_fits_in_memory() {
        let cfg = auto_tune(
            10_000,
            64,
            100_000,
            20,
            8_000_000_000,
            128 * 1024,
            1_000_000,
            true,
        );
        assert!(cfg.fits_in_memory);
        assert_eq!(cfg.physical_partitions, 1);
    }

    /// The paper's target scenario: Freebase86M-sized embeddings (34 GB of
    /// parameters) on a 61 GB machine with the paper's EBS block size — the graph
    /// does not fit once both edge copies and working memory are accounted for,
    /// so disk-based training with a non-trivial partition count is selected.
    #[test]
    fn auto_tune_freebase86m_on_p3_2xlarge() {
        let cfg = auto_tune(
            86_000_000,
            100,
            338_000_000,
            20,
            61_000_000_000,
            128 * 1024,
            4_000_000_000,
            true,
        );
        assert!(!cfg.fits_in_memory);
        assert!(cfg.physical_partitions >= 2);
        assert!(cfg.buffer_capacity >= 2);
        assert!(cfg.buffer_capacity <= cfg.physical_partitions as usize);
        // l = 2p/c rule.
        let expected_l = (2 * cfg.physical_partitions as usize).div_ceil(cfg.buffer_capacity);
        assert_eq!(
            cfg.logical_partitions as usize,
            expected_l.min(cfg.physical_partitions as usize)
        );
    }

    #[test]
    fn auto_tune_respects_memory_budget() {
        let cpu = 2_000_000_000u64;
        let cfg = auto_tune(
            20_000_000,
            100,
            100_000_000,
            20,
            cpu,
            128 * 1024,
            100_000_000,
            true,
        );
        assert!(!cfg.fits_in_memory);
        let p = cfg.physical_partitions as f64;
        let po = 20_000_000.0 * 100.0 * 8.0 / p;
        let ebo = 100_000_000.0 * 20.0 / (p * p);
        let cost =
            cfg.buffer_capacity as f64 * po + 2.0 * (cfg.buffer_capacity as f64).powi(2) * ebo;
        assert!(cost < cpu as f64, "buffer cost {cost} exceeds CPU budget");
    }

    #[test]
    fn auto_tune_block_size_bounds_partitions() {
        // A larger block size forces fewer partitions (reads must stay block-sized).
        let small_block = auto_tune(
            20_000_000,
            100,
            200_000_000,
            20,
            4_000_000_000,
            64 * 1024,
            100_000_000,
            true,
        );
        let large_block = auto_tune(
            20_000_000,
            100,
            200_000_000,
            20,
            4_000_000_000,
            1024 * 1024,
            100_000_000,
            true,
        );
        assert!(large_block.physical_partitions <= small_block.physical_partitions);
    }
}
