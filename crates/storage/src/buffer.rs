//! The partition buffer: the CPU-resident working set of out-of-core training.
//!
//! The buffer holds up to `c` physical node partitions (embedding rows plus
//! optimizer state) and the edge buckets between them. The trainer asks it to
//! load each `Sᵢ` of an [`crate::policy::EpochPlan`] in turn; the buffer writes
//! evicted partitions back to the [`PartitionStore`], reads the new ones, and
//! rebuilds the dual-sorted in-memory subgraph used for neighbourhood sampling
//! (paper §4.1). Embedding gathers and sparse Adagrad write-backs (Figure 2 steps
//! 5–6) are served directly from the resident partitions.
//!
//! Three entry points swap the working set:
//!
//! * [`PartitionBuffer::load_set`] — the synchronous path: evicts (writing
//!   dirty partitions back inline), then reads partitions and edge buckets
//!   from disk on the calling thread.
//! * [`PartitionBuffer::install_set`] — the read-asynchronous path: the
//!   prefetcher thread has already read the partition and bucket files, so
//!   the swap only evicts (still writing dirty partitions back inline) and
//!   moves the prefetched data into place, keeping disk *reads* off the
//!   compute thread.
//! * [`PartitionBuffer::install_set_deferred`] — the fully asynchronous path
//!   used by `marius-pipeline`: dirty evictions are *detached* as owned
//!   [`EvictedPartition`] payloads instead of being written inline, so the
//!   caller can hand them to a write-back drain thread while the next step
//!   computes. The shared [`WritebackLedger`] tracks which partitions have
//!   detached contents in flight; [`PartitionBuffer::flush`] waits for the
//!   ledger to drain before touching the same files, and installs reject a
//!   partition whose write-back is still pending (its disk bytes are stale).
//!
//! The buffer itself stays single-threaded (`&mut self` swaps and updates);
//! cross-thread sharing happens through the [`PartitionStore`], which is
//! `Send + Sync` (plain paths plus atomic IO counters), through the
//! immutable per-step payloads the pipeline passes between its stages, and
//! through the ledger's pending-set.

use crate::disk::PartitionStore;
use crate::{Result, StorageError};
use marius_graph::{Edge, InMemorySubgraph, NodeId, PartitionAssignment, PartitionId};
use marius_telemetry::{Counter, Histogram, Telemetry};
use marius_tensor::Tensor;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

/// Fixed buckets for the write-back ledger occupancy histogram (pending
/// detached evictions observed at each deferred swap).
const LEDGER_OCCUPANCY_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64];

/// A resident node partition: embedding rows and Adagrad state for its nodes, in
/// the order given by `PartitionAssignment::nodes_in`.
#[derive(Debug, Clone)]
struct ResidentPartition {
    values: Vec<f32>,
    state: Vec<f32>,
    dirty: bool,
}

/// A dirty partition detached from the buffer on eviction: the owned value and
/// state buffers form a second, off-buffer generation of the partition that
/// must reach the [`PartitionStore`] before the partition's file may be read
/// again. Produced by [`PartitionBuffer::install_set_deferred`] and drained by
/// the pipeline's write-back thread.
#[derive(Debug)]
pub struct EvictedPartition {
    /// The detached partition's id.
    pub id: PartitionId,
    /// Embedding rows, in `PartitionAssignment::nodes_in` order.
    pub values: Vec<f32>,
    /// Optimizer state, same layout as `values`.
    pub state: Vec<f32>,
}

/// Cross-thread bookkeeping of partitions whose evicted contents have been
/// detached to an asynchronous write-back drain but not yet confirmed on
/// disk. The buffer marks a partition pending when it detaches it; the drain
/// thread calls [`WritebackLedger::mark_drained`] once the bytes have been
/// written. While a partition is pending its on-disk file is stale, so
/// installs of that partition fail and [`PartitionBuffer::flush`] blocks
/// until the ledger empties.
#[derive(Debug, Default)]
pub struct WritebackLedger {
    pending: Mutex<HashSet<PartitionId>>,
    drained: Condvar,
}

impl WritebackLedger {
    /// Locks the pending set, recovering from poison: every critical section
    /// is a single `HashSet` operation that cannot be observed half-done, so
    /// a peer thread that panicked while holding the lock left consistent
    /// state behind. Recovering here keeps a stage panic from cascading into
    /// every thread that shares the ledger — the panic itself is surfaced as
    /// a typed error by the pipeline's supervision layer.
    fn lock_pending(&self) -> std::sync::MutexGuard<'_, HashSet<PartitionId>> {
        self.pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn mark_pending(&self, id: PartitionId) {
        self.lock_pending().insert(id);
    }

    /// Records that `id`'s detached contents have been written back (or
    /// abandoned by an aborting drain). Wakes any [`WritebackLedger::wait_drained`] callers.
    pub fn mark_drained(&self, id: PartitionId) {
        let mut pending = self.lock_pending();
        pending.remove(&id);
        drop(pending);
        self.drained.notify_all();
    }

    /// `true` while `id` has a detached write-back in flight.
    pub fn is_pending(&self, id: PartitionId) -> bool {
        self.lock_pending().contains(&id)
    }

    /// Number of partitions with write-backs in flight.
    pub fn pending_count(&self) -> usize {
        self.lock_pending().len()
    }

    /// Abandons every pending write-back and wakes all waiters. Called by
    /// the pipeline's supervision layer when a failed drain can no longer
    /// deliver the detached bytes: the run has failed and recovery goes
    /// through checkpoints, so blocking peers on writes that will never land
    /// would only convert a typed error into a deadlock. Returns how many
    /// write-backs were abandoned.
    pub fn abandon_pending(&self) -> usize {
        let mut pending = self.lock_pending();
        let abandoned = pending.len();
        pending.clear();
        drop(pending);
        self.drained.notify_all();
        abandoned
    }

    /// Blocks until every pending write-back has been marked drained.
    ///
    /// Unlike the single-operation methods above, a waiter cannot safely
    /// recover a poisoned condition-variable wait, so a panicked peer
    /// surfaces here as a typed [`StorageError::Pipeline`] instead of a
    /// cascading panic.
    pub fn wait_drained(&self) -> Result<()> {
        let poisoned = |_| StorageError::Pipeline {
            stage: "writeback-ledger".into(),
            reason: "a peer thread panicked while the write-back ledger was locked".into(),
        };
        let mut pending = self.pending.lock().map_err(poisoned)?;
        while !pending.is_empty() {
            pending = self.drained.wait(pending).map_err(poisoned)?;
        }
        Ok(())
    }
}

/// Monotonic swap-activity counters of a [`PartitionBuffer`]: how many
/// partitions of each requested set were already resident (hits), how many
/// had to come from disk or the prefetcher (misses), and how many residents
/// were evicted to make room. Counted on every swap path (synchronous,
/// install, deferred); reset per epoch by the trainer via
/// [`PartitionBuffer::reset_stats`], like the store's IO stats.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Requested partitions that were already resident at swap time.
    pub hits: u64,
    /// Requested partitions that were loaded (or installed prefetched).
    pub misses: u64,
    /// Resident partitions evicted to make room (dirty or clean).
    pub evictions: u64,
}

/// Live telemetry handles mirroring buffer swap activity under `buffer.*`
/// names (no-ops until [`PartitionBuffer::with_telemetry`]).
#[derive(Debug, Default)]
struct BufferTelemetry {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    ledger_occupancy: Histogram,
}

impl BufferTelemetry {
    fn attach(telemetry: &Telemetry) -> Self {
        BufferTelemetry {
            hits: telemetry.counter("buffer.hits"),
            misses: telemetry.counter("buffer.misses"),
            evictions: telemetry.counter("buffer.evictions"),
            ledger_occupancy: telemetry
                .histogram("writeback.ledger_occupancy", LEDGER_OCCUPANCY_BOUNDS),
        }
    }
}

/// The fixed-capacity partition buffer.
#[derive(Debug)]
pub struct PartitionBuffer {
    store: PartitionStore,
    assignment: PartitionAssignment,
    dim: usize,
    capacity: usize,
    /// Whether embeddings are learnable (link prediction) or fixed features
    /// (node classification); fixed features skip write-backs entirely.
    learnable: bool,
    /// Adagrad learning rate for sparse embedding updates.
    lr: f32,
    /// node -> (partition, offset within partition) lookup.
    node_location: Vec<(PartitionId, u32)>,
    resident: HashMap<PartitionId, ResidentPartition>,
    /// Edges of the currently loaded buckets.
    in_memory_edges: Vec<Edge>,
    /// Shared so epoch executors can snapshot it without deep-copying the
    /// CSR structures (the pipelined path hands pre-built subgraphs in).
    subgraph: Arc<InMemorySubgraph>,
    /// Shared with the pipeline's write-back drain: which partitions have
    /// detached (deferred-dirty) contents that are not yet on disk.
    ledger: Arc<WritebackLedger>,
    /// Swap hit/miss/eviction counters (always on; plain integers).
    stats: BufferStats,
    /// Live `buffer.*` telemetry (no-ops unless a recorder is attached).
    telemetry: BufferTelemetry,
}

impl PartitionBuffer {
    /// Creates a buffer over `store` for the given node-partition assignment.
    pub fn new(
        store: PartitionStore,
        assignment: PartitionAssignment,
        dim: usize,
        capacity: usize,
        learnable: bool,
    ) -> Self {
        let mut node_location = vec![(0u32, 0u32); assignment.num_nodes() as usize];
        for p in 0..assignment.num_partitions() {
            for (offset, &node) in assignment.nodes_in(p).iter().enumerate() {
                node_location[node as usize] = (p, offset as u32);
            }
        }
        PartitionBuffer {
            store,
            assignment,
            dim,
            capacity,
            learnable,
            lr: 0.1,
            node_location,
            resident: HashMap::new(),
            in_memory_edges: Vec::new(),
            subgraph: Arc::new(InMemorySubgraph::from_edges(&[])),
            ledger: Arc::new(WritebackLedger::default()),
            stats: BufferStats::default(),
            telemetry: BufferTelemetry::default(),
        }
    }

    /// Attaches live telemetry (`buffer.hits` / `buffer.misses` /
    /// `buffer.evictions` counters and the `writeback.ledger_occupancy`
    /// histogram). With a disabled recorder the handles are no-ops; the plain
    /// [`BufferStats`] counters are maintained either way.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.attach_telemetry(telemetry);
        self
    }

    /// In-place form of [`PartitionBuffer::with_telemetry`], for buffers
    /// already embedded in a larger setup.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = BufferTelemetry::attach(telemetry);
    }

    /// A shared handle to the write-back ledger, for the drain thread that
    /// confirms detached evictions once their bytes land on disk.
    pub fn writeback_ledger(&self) -> Arc<WritebackLedger> {
        Arc::clone(&self.ledger)
    }

    /// Sets the Adagrad learning rate for embedding write-backs.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Buffer capacity in physical partitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The partition assignment backing this buffer.
    pub fn assignment(&self) -> &PartitionAssignment {
        &self.assignment
    }

    /// The underlying store (for IO statistics).
    pub fn store(&self) -> &PartitionStore {
        &self.store
    }

    /// A snapshot of the swap hit/miss/eviction counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Resets the swap counters (used between epochs by the trainer, like
    /// [`PartitionStore::reset_io_stats`]).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// Records one completed swap: `hits` partitions of the requested set
    /// were already resident, `misses` came from disk or the prefetcher.
    fn note_swap(&mut self, hits: u64, misses: u64) {
        self.stats.hits += hits;
        self.stats.misses += misses;
        self.telemetry.hits.add(hits);
        self.telemetry.misses.add(misses);
    }

    /// Writes initial random embeddings (and zero optimizer state) for every
    /// partition to disk. Used for learnable-embedding (link prediction) runs.
    pub fn initialize_random<R: Rng + ?Sized>(&self, init_scale: f32, rng: &mut R) -> Result<()> {
        for p in 0..self.assignment.num_partitions() {
            let n = self.assignment.nodes_in(p).len();
            let mut values = vec![0.0f32; n * self.dim];
            for v in values.iter_mut() {
                *v = rng.gen_range(-init_scale..init_scale);
            }
            let state = vec![0.0f32; n * self.dim];
            self.store.write_partition(p, &values, &state)?;
        }
        Ok(())
    }

    /// Writes initial embeddings from a per-node feature source (row-major,
    /// `dim` floats per node). Used for fixed-feature (node classification) runs.
    pub fn initialize_from_features(&self, features: &[f32]) -> Result<()> {
        assert_eq!(
            features.len(),
            self.assignment.num_nodes() as usize * self.dim,
            "feature buffer must cover every node"
        );
        for p in 0..self.assignment.num_partitions() {
            let nodes = self.assignment.nodes_in(p);
            let mut values = Vec::with_capacity(nodes.len() * self.dim);
            for &node in nodes {
                let start = node as usize * self.dim;
                values.extend_from_slice(&features[start..start + self.dim]);
            }
            let state = vec![0.0f32; values.len()];
            self.store.write_partition(p, &values, &state)?;
        }
        Ok(())
    }

    /// Writes the edge buckets produced by `Partitioner::build_buckets` to disk.
    pub fn initialize_buckets(&self, buckets: &[marius_graph::EdgeBucket]) -> Result<()> {
        for b in buckets {
            if !b.edges.is_empty() {
                self.store
                    .write_bucket(b.src_partition, b.dst_partition, &b.edges)?;
            }
        }
        Ok(())
    }

    /// Loads partition set `set` into the buffer: evicts (writing back) resident
    /// partitions not in `set`, reads the new ones plus every edge bucket between
    /// resident partitions, and rebuilds the sampling subgraph.
    ///
    /// Returns the number of partitions read from disk.
    pub fn load_set(&mut self, set: &[PartitionId]) -> Result<usize> {
        let (_wanted, evicted) = self.begin_swap(set)?;
        self.write_evicted_inline(evicted)?;

        // Load the missing partitions.
        let mut loads = 0usize;
        for &p in set {
            if !self.resident.contains_key(&p) {
                let (values, state) = self.store.read_partition(p)?;
                self.resident.insert(
                    p,
                    ResidentPartition {
                        values,
                        state,
                        dirty: false,
                    },
                );
                loads += 1;
            }
        }

        // (Re)load every bucket between resident partitions.
        self.in_memory_edges.clear();
        let mut edges: Vec<Edge> = Vec::new();
        for &i in set {
            for &j in set {
                let bucket_edges = self.store.read_bucket(i, j)?;
                edges.extend_from_slice(&bucket_edges);
            }
        }
        self.in_memory_edges = edges;
        self.subgraph = Arc::new(InMemorySubgraph::from_edges(&self.in_memory_edges));
        self.note_swap((set.len() - loads) as u64, loads as u64);
        Ok(loads)
    }

    /// Installs a partition set whose data was already read from disk (by the
    /// `marius-pipeline` prefetcher): evicts resident partitions not in `set`
    /// (writing dirty ones back), moves `new_parts` into residency, and adopts
    /// the prefetched edge set and sampling subgraph without touching the
    /// store's read path.
    ///
    /// `new_parts` must contain exactly the partitions of `set` that are not
    /// currently resident; `edges`/`subgraph` must describe the buckets
    /// between the partitions of `set` (in the same `set × set` order
    /// [`PartitionBuffer::load_set`] reads them). Returns the number of
    /// partitions installed.
    pub fn install_set(
        &mut self,
        set: &[PartitionId],
        new_parts: Vec<(PartitionId, Vec<f32>, Vec<f32>)>,
        edges: Vec<Edge>,
        subgraph: Arc<InMemorySubgraph>,
    ) -> Result<usize> {
        let (installs, evicted) = self.install_set_impl(set, new_parts, edges, subgraph)?;
        self.write_evicted_inline(evicted)?;
        Ok(installs)
    }

    /// Like [`PartitionBuffer::install_set`], but instead of writing evicted
    /// dirty partitions back inline, *detaches* them: ownership of their
    /// value/state buffers transfers to the returned [`EvictedPartition`]s (a
    /// second buffer generation kept alive off the compute path) and each is
    /// marked pending in the [`WritebackLedger`]. The caller must hand every
    /// returned payload to a drain that writes it to the store and then calls
    /// [`WritebackLedger::mark_drained`] — until then the partition's on-disk
    /// file holds stale bytes and must not be read.
    pub fn install_set_deferred(
        &mut self,
        set: &[PartitionId],
        new_parts: Vec<(PartitionId, Vec<f32>, Vec<f32>)>,
        edges: Vec<Edge>,
        subgraph: Arc<InMemorySubgraph>,
    ) -> Result<(usize, Vec<EvictedPartition>)> {
        let (installs, evicted) = self.install_set_impl(set, new_parts, edges, subgraph)?;
        for e in &evicted {
            self.ledger.mark_pending(e.id);
        }
        self.telemetry
            .ledger_occupancy
            .record(self.ledger.pending_count() as u64);
        Ok((installs, evicted))
    }

    fn install_set_impl(
        &mut self,
        set: &[PartitionId],
        new_parts: Vec<(PartitionId, Vec<f32>, Vec<f32>)>,
        edges: Vec<Edge>,
        subgraph: Arc<InMemorySubgraph>,
    ) -> Result<(usize, Vec<EvictedPartition>)> {
        let (wanted, evicted) = self.begin_swap(set)?;
        match self.install_new_parts(&wanted, set, new_parts, edges, subgraph) {
            Ok(installs) => {
                self.note_swap((set.len() - installs) as u64, installs as u64);
                Ok((installs, evicted))
            }
            Err(e) => {
                // The swap already detached this step's dirty evictions; put
                // their bytes on disk (best effort) before surfacing the
                // error so no training update is lost on the abort path. If
                // the rescue write fails too, the install error stays the
                // root cause the caller sees.
                let _ = self.write_evicted_inline(evicted);
                Err(e)
            }
        }
    }

    fn install_new_parts(
        &mut self,
        wanted: &HashSet<PartitionId>,
        set: &[PartitionId],
        new_parts: Vec<(PartitionId, Vec<f32>, Vec<f32>)>,
        edges: Vec<Edge>,
        subgraph: Arc<InMemorySubgraph>,
    ) -> Result<usize> {
        let installs = new_parts.len();
        for (p, values, state) in new_parts {
            if !wanted.contains(&p) {
                return Err(StorageError::InvalidPlan {
                    reason: format!("prefetched partition {p} is not part of the installed set"),
                });
            }
            if self.resident.contains_key(&p) {
                // Overwriting a resident (possibly dirty) copy with stale disk
                // data would silently lose training updates.
                return Err(StorageError::InvalidPlan {
                    reason: format!(
                        "prefetched partition {p} is already resident; install_set takes only the missing partitions of the set"
                    ),
                });
            }
            if self.ledger.is_pending(p) {
                // The partition's detached eviction has not reached disk yet,
                // so whatever the caller read from its file is stale.
                return Err(StorageError::InvalidPlan {
                    reason: format!(
                        "partition {p} still has a pending write-back; installing it would revive stale disk bytes"
                    ),
                });
            }
            self.resident.insert(
                p,
                ResidentPartition {
                    values,
                    state,
                    dirty: false,
                },
            );
        }
        for &p in set {
            if !self.resident.contains_key(&p) {
                return Err(StorageError::NotResident {
                    reason: format!(
                        "partition {p} of the installed set was neither resident nor prefetched"
                    ),
                });
            }
        }
        self.in_memory_edges = edges;
        self.subgraph = subgraph;
        Ok(installs)
    }

    /// Shared prologue of the swap paths: validates the set against the
    /// buffer capacity and evicts resident partitions outside it, detaching
    /// dirty ones (in ascending id order, for a deterministic write order)
    /// instead of writing them. Returns the wanted-set lookup and the
    /// detached evictions.
    fn begin_swap(
        &mut self,
        set: &[PartitionId],
    ) -> Result<(HashSet<PartitionId>, Vec<EvictedPartition>)> {
        if set.len() > self.capacity {
            return Err(StorageError::InvalidPlan {
                reason: format!(
                    "set of {} partitions exceeds buffer capacity {}",
                    set.len(),
                    self.capacity
                ),
            });
        }
        let wanted: HashSet<PartitionId> = set.iter().copied().collect();
        let mut to_evict: Vec<PartitionId> = self
            .resident
            .keys()
            .copied()
            .filter(|p| !wanted.contains(p))
            .collect();
        to_evict.sort_unstable();
        self.stats.evictions += to_evict.len() as u64;
        self.telemetry.evictions.add(to_evict.len() as u64);
        let mut evicted = Vec::with_capacity(to_evict.len());
        for p in to_evict {
            if let Some(data) = self.resident.remove(&p) {
                if self.learnable && data.dirty {
                    evicted.push(EvictedPartition {
                        id: p,
                        values: data.values,
                        state: data.state,
                    });
                }
            }
        }
        Ok((wanted, evicted))
    }

    /// Writes detached evictions straight back to the store (the synchronous
    /// swap paths, and the deferred path's error recovery).
    fn write_evicted_inline(&self, evicted: Vec<EvictedPartition>) -> Result<()> {
        for e in evicted {
            self.store.write_partition(e.id, &e.values, &e.state)?;
        }
        Ok(())
    }

    /// Writes every dirty resident partition back to disk (end of epoch), in
    /// ascending partition-id order. Any evictions still detached to an
    /// asynchronous drain are waited out first, so after `flush` returns the
    /// store holds the complete, current state of every partition.
    pub fn flush(&mut self) -> Result<()> {
        self.ledger.wait_drained()?;
        if !self.learnable {
            return Ok(());
        }
        let mut dirty: Vec<(PartitionId, &mut ResidentPartition)> = self
            .resident
            .iter_mut()
            .filter(|(_, data)| data.dirty)
            .map(|(&p, data)| (p, data))
            .collect();
        dirty.sort_unstable_by_key(|&(p, _)| p);
        for (p, data) in dirty {
            self.store.write_partition(p, &data.values, &data.state)?;
            data.dirty = false;
        }
        Ok(())
    }

    /// The currently resident partitions.
    pub fn resident_partitions(&self) -> Vec<PartitionId> {
        let mut v: Vec<PartitionId> = self.resident.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// All node ids whose partitions are currently resident (candidates for
    /// negative sampling and target selection). Partitions are visited in
    /// ascending id order so the candidate list — and therefore negative
    /// sampling under a fixed seed — is deterministic and identical between
    /// the sequential and pipelined training paths.
    pub fn resident_nodes(&self) -> Vec<NodeId> {
        let parts = self.resident_partitions();
        let total: usize = parts
            .iter()
            .map(|&p| self.assignment.nodes_in(p).len())
            .sum();
        let mut nodes = Vec::with_capacity(total);
        for p in parts {
            nodes.extend_from_slice(self.assignment.nodes_in(p));
        }
        nodes
    }

    /// `true` if the node's partition is currently resident.
    pub fn is_resident(&self, node: NodeId) -> bool {
        let (p, _) = self.node_location[node as usize];
        self.resident.contains_key(&p)
    }

    /// The dual-sorted in-memory subgraph over the loaded edge buckets.
    pub fn subgraph(&self) -> &InMemorySubgraph {
        &self.subgraph
    }

    /// A shared handle to the same subgraph: epoch executors snapshot this
    /// (one `Arc` bump) instead of deep-copying the CSR structures before a
    /// mini batch borrows the buffer mutably.
    pub fn subgraph_arc(&self) -> Arc<InMemorySubgraph> {
        Arc::clone(&self.subgraph)
    }

    /// Number of edges currently in memory.
    pub fn num_in_memory_edges(&self) -> usize {
        self.in_memory_edges.len()
    }

    /// Gathers the embedding rows of `nodes` into a `(nodes.len(), dim)` tensor.
    ///
    /// Maximal runs of nodes at consecutive offsets of the same partition are
    /// copied with a single `copy_from_slice` (partition layouts place
    /// consecutive node ids at consecutive offsets, so sorted gathers of
    /// contiguous id ranges collapse to one copy per partition); arbitrary
    /// orders degrade gracefully to per-row copies.
    ///
    /// Returns an error if any node's partition is not resident — out-of-core
    /// training guarantees this never happens because mini batches are built only
    /// from in-memory edges.
    pub fn gather(&self, nodes: &[NodeId]) -> Result<Tensor> {
        let dim = self.dim;
        let mut out = Tensor::zeros(nodes.len(), dim);
        let out_data = out.data_mut();
        let mut i = 0usize;
        while i < nodes.len() {
            let node = nodes[i];
            let (p, offset) = self.node_location[node as usize];
            let data = self
                .resident
                .get(&p)
                .ok_or_else(|| StorageError::NotResident {
                    reason: format!("node {node} lives in partition {p} which is not resident"),
                })?;
            let mut run = 1usize;
            while i + run < nodes.len() {
                let (q, o) = self.node_location[nodes[i + run] as usize];
                if q != p || o != offset + run as u32 {
                    break;
                }
                run += 1;
            }
            let src = offset as usize * dim;
            out_data[i * dim..(i + run) * dim].copy_from_slice(&data.values[src..src + run * dim]);
            i += run;
        }
        Ok(out)
    }

    /// Applies a sparse Adagrad update: `grads` row `i` is the gradient for
    /// `nodes[i]`. No-op when the buffer wraps fixed (non-learnable) features.
    pub fn apply_update(&mut self, nodes: &[NodeId], grads: &Tensor) -> Result<()> {
        if !self.learnable {
            return Ok(());
        }
        assert_eq!(grads.rows(), nodes.len(), "gradient row count mismatch");
        assert_eq!(grads.cols(), self.dim, "gradient dim mismatch");
        for (i, &node) in nodes.iter().enumerate() {
            let (p, offset) = self.node_location[node as usize];
            let data = self
                .resident
                .get_mut(&p)
                .ok_or_else(|| StorageError::NotResident {
                    reason: format!("node {node} lives in partition {p} which is not resident"),
                })?;
            data.dirty = true;
            let start = offset as usize * self.dim;
            for (d, &g) in grads.row(i).iter().enumerate() {
                let s = &mut data.state[start + d];
                *s += g * g;
                data.values[start + d] -= self.lr * g / (s.sqrt() + 1e-10);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::{EdgeList, Partitioner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_buffer(
        label: &str,
        num_nodes: u64,
        p: u32,
        capacity: usize,
        learnable: bool,
    ) -> (PartitionBuffer, Vec<marius_graph::EdgeBucket>) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut el = EdgeList::new(num_nodes);
        for i in 0..num_nodes {
            el.push(Edge::new(i, (i + 1) % num_nodes)).unwrap();
            el.push(Edge::new(i, (i + 5) % num_nodes)).unwrap();
        }
        let partitioner = Partitioner::new(p).unwrap();
        let assignment = partitioner.random(num_nodes, &mut rng);
        let buckets = partitioner.build_buckets(&el, &assignment).unwrap();
        let store = PartitionStore::open_temp(label).unwrap();
        store.clear().unwrap();
        let buffer = PartitionBuffer::new(store, assignment, 4, capacity, learnable);
        buffer.initialize_random(0.1, &mut rng).unwrap();
        buffer.initialize_buckets(&buckets).unwrap();
        (buffer, buckets)
    }

    #[test]
    fn load_set_brings_partitions_and_edges_into_memory() {
        let (mut buffer, buckets) = build_buffer("load-set", 40, 4, 2, true);
        let loads = buffer.load_set(&[0, 1]).unwrap();
        assert_eq!(loads, 2);
        assert_eq!(buffer.resident_partitions(), vec![0, 1]);
        // The in-memory edges are exactly the four buckets between 0 and 1.
        let expected: usize = [(0u32, 0u32), (0, 1), (1, 0), (1, 1)]
            .iter()
            .map(|&(i, j)| buckets[(i * 4 + j) as usize].len())
            .sum();
        assert_eq!(buffer.num_in_memory_edges(), expected);
        assert!(buffer.subgraph().num_edges() == expected);
    }

    #[test]
    fn load_set_evicts_and_reuses() {
        let (mut buffer, _) = build_buffer("evict", 40, 4, 2, true);
        buffer.load_set(&[0, 1]).unwrap();
        // Partition 0 stays, 2 is new, 1 is evicted.
        let loads = buffer.load_set(&[0, 2]).unwrap();
        assert_eq!(loads, 1);
        assert_eq!(buffer.resident_partitions(), vec![0, 2]);
        assert!(buffer.is_resident(buffer.assignment().nodes_in(2)[0]));
    }

    #[test]
    fn load_set_respects_capacity() {
        let (mut buffer, _) = build_buffer("capacity", 40, 4, 2, true);
        assert!(buffer.load_set(&[0, 1, 2]).is_err());
    }

    #[test]
    fn gather_returns_rows_for_resident_nodes_only() {
        let (mut buffer, _) = build_buffer("gather", 40, 4, 2, true);
        buffer.load_set(&[1, 3]).unwrap();
        let nodes = buffer.assignment().nodes_in(1).to_vec();
        let t = buffer.gather(&nodes[..3]).unwrap();
        assert_eq!(t.shape(), (3, 4));
        // A node from a non-resident partition errors.
        let outside = buffer.assignment().nodes_in(0)[0];
        assert!(buffer.gather(&[outside]).is_err());
    }

    #[test]
    fn updates_persist_across_eviction_and_reload() {
        let (mut buffer, _) = build_buffer("persist", 40, 4, 2, true);
        buffer.load_set(&[0, 1]).unwrap();
        let node = buffer.assignment().nodes_in(0)[0];
        let before = buffer.gather(&[node]).unwrap();
        let grad = Tensor::ones(1, 4);
        buffer.apply_update(&[node], &grad).unwrap();
        let after_update = buffer.gather(&[node]).unwrap();
        assert_ne!(before, after_update);
        // Evict partition 0, then bring it back: the update must have been
        // written to disk and read back.
        buffer.load_set(&[1, 2]).unwrap();
        buffer.load_set(&[0, 1]).unwrap();
        let reloaded = buffer.gather(&[node]).unwrap();
        assert_eq!(after_update, reloaded);
    }

    #[test]
    fn non_learnable_buffer_skips_updates_and_writebacks() {
        let (mut buffer, _) = build_buffer("fixed", 40, 4, 2, false);
        buffer.load_set(&[0, 1]).unwrap();
        let node = buffer.assignment().nodes_in(0)[0];
        let before = buffer.gather(&[node]).unwrap();
        buffer.apply_update(&[node], &Tensor::ones(1, 4)).unwrap();
        let after = buffer.gather(&[node]).unwrap();
        assert_eq!(before, after);
        let writes_before = buffer.store().io_stats().writes;
        buffer.flush().unwrap();
        assert_eq!(buffer.store().io_stats().writes, writes_before);
    }

    #[test]
    fn initialize_from_features_places_rows_by_node_id() {
        let num_nodes = 12u64;
        let dim = 4usize;
        let mut rng = StdRng::seed_from_u64(9);
        let mut el = EdgeList::new(num_nodes);
        for i in 0..num_nodes {
            el.push(Edge::new(i, (i + 1) % num_nodes)).unwrap();
        }
        let partitioner = Partitioner::new(3).unwrap();
        let assignment = partitioner.random(num_nodes, &mut rng);
        let buckets = partitioner.build_buckets(&el, &assignment).unwrap();
        let store = PartitionStore::open_temp("features").unwrap();
        store.clear().unwrap();
        let mut buffer = PartitionBuffer::new(store, assignment, dim, 3, false);
        // Feature of node n is [n, n, n, n].
        let features: Vec<f32> = (0..num_nodes).flat_map(|n| vec![n as f32; dim]).collect();
        buffer.initialize_from_features(&features).unwrap();
        buffer.initialize_buckets(&buckets).unwrap();
        buffer.load_set(&[0, 1, 2]).unwrap();
        let t = buffer.gather(&[7, 2]).unwrap();
        assert_eq!(t.row(0), &[7.0, 7.0, 7.0, 7.0]);
        assert_eq!(t.row(1), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn io_stats_reflect_partition_traffic() {
        let (mut buffer, _) = build_buffer("iostats", 40, 4, 2, true);
        buffer.store().reset_io_stats();
        buffer.load_set(&[0, 1]).unwrap();
        let stats = buffer.store().io_stats();
        assert!(stats.reads >= 2);
        assert!(stats.bytes_read > 0);
    }

    #[test]
    fn install_set_matches_load_set() {
        // Drive one buffer through load_set and a twin through install_set
        // with prefetched data; both must end up in identical states.
        let (mut seq, _) = build_buffer("install-seq", 40, 4, 2, true);
        let (mut pipe, _) = build_buffer("install-pipe", 40, 4, 2, true);
        // Same disk contents: copy the sequential store's files over.
        for p in 0..4u32 {
            let (v, s) = seq.store().read_partition(p).unwrap();
            pipe.store().write_partition(p, &v, &s).unwrap();
            for q in 0..4u32 {
                let edges = seq.store().read_bucket(p, q).unwrap();
                pipe.store().write_bucket(p, q, &edges).unwrap();
            }
        }
        for set in [vec![0u32, 1], vec![1, 2], vec![0, 3]] {
            seq.load_set(&set).unwrap();
            // Prefetch what install_set expects: missing partitions + edges.
            let mut new_parts = Vec::new();
            for &p in &set {
                if !pipe.resident_partitions().contains(&p) {
                    let (v, s) = pipe.store().read_partition(p).unwrap();
                    new_parts.push((p, v, s));
                }
            }
            let mut edges = Vec::new();
            for &i in &set {
                for &j in &set {
                    edges.extend_from_slice(&pipe.store().read_bucket(i, j).unwrap());
                }
            }
            let subgraph = Arc::new(InMemorySubgraph::from_edges(&edges));
            let installed = pipe.install_set(&set, new_parts, edges, subgraph).unwrap();
            assert!(installed <= set.len());
            assert_eq!(seq.resident_partitions(), pipe.resident_partitions());
            assert_eq!(seq.resident_nodes(), pipe.resident_nodes());
            assert_eq!(seq.num_in_memory_edges(), pipe.num_in_memory_edges());
            let nodes = seq.resident_nodes();
            assert_eq!(
                seq.gather(&nodes[..4]).unwrap(),
                pipe.gather(&nodes[..4]).unwrap()
            );
        }
    }

    #[test]
    fn install_set_rejects_missing_or_foreign_partitions() {
        let (mut buffer, _) = build_buffer("install-invalid", 40, 4, 2, true);
        // Partition 1 neither resident nor prefetched.
        let (v, s) = buffer.store().read_partition(0).unwrap();
        let err = buffer.install_set(
            &[0, 1],
            vec![(0, v.clone(), s.clone())],
            Vec::new(),
            Arc::new(InMemorySubgraph::from_edges(&[])),
        );
        assert!(err.is_err());
        // Prefetched partition outside the set.
        let err = buffer.install_set(
            &[0],
            vec![(0, v.clone(), s.clone()), (3, v, s)],
            Vec::new(),
            Arc::new(InMemorySubgraph::from_edges(&[])),
        );
        assert!(err.is_err());
    }

    #[test]
    fn store_is_send_and_sync_for_the_prefetcher() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::PartitionStore>();
    }

    #[test]
    fn install_set_deferred_detaches_dirty_evictions() {
        let (mut buffer, _) = build_buffer("deferred-detach", 40, 4, 2, true);
        buffer.load_set(&[0, 1]).unwrap();
        // Dirty partition 0, keep partition 1 clean.
        let node = buffer.assignment().nodes_in(0)[0];
        buffer.apply_update(&[node], &Tensor::ones(1, 4)).unwrap();
        let updated = buffer.gather(&[node]).unwrap();
        let writes_before = buffer.store().io_stats().writes;
        // Swap to {2, 3}: both 0 and 1 are evicted, only 0 is dirty.
        let mut new_parts = Vec::new();
        for p in [2u32, 3] {
            let (v, s) = buffer.store().read_partition(p).unwrap();
            new_parts.push((p, v, s));
        }
        let (installs, evicted) = buffer
            .install_set_deferred(
                &[2, 3],
                new_parts,
                Vec::new(),
                Arc::new(InMemorySubgraph::from_edges(&[])),
            )
            .unwrap();
        assert_eq!(installs, 2);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id, 0);
        // Nothing was written inline; the ledger tracks the detached eviction.
        assert_eq!(buffer.store().io_stats().writes, writes_before);
        let ledger = buffer.writeback_ledger();
        assert!(ledger.is_pending(0));
        assert_eq!(ledger.pending_count(), 1);
        // Drain it the way the pipeline's write-back thread would.
        let e = &evicted[0];
        buffer
            .store()
            .write_partition(e.id, &e.values, &e.state)
            .unwrap();
        ledger.mark_drained(e.id);
        assert!(!ledger.is_pending(0));
        // The drained bytes round-trip: reloading partition 0 sees the update.
        buffer.load_set(&[0, 1]).unwrap();
        assert_eq!(buffer.gather(&[node]).unwrap(), updated);
    }

    #[test]
    fn install_rejects_partition_with_pending_writeback() {
        let (mut buffer, _) = build_buffer("deferred-stale", 40, 4, 2, true);
        buffer.load_set(&[0, 1]).unwrap();
        let node = buffer.assignment().nodes_in(0)[0];
        buffer.apply_update(&[node], &Tensor::ones(1, 4)).unwrap();
        let (v2, s2) = buffer.store().read_partition(2).unwrap();
        let (_, evicted) = buffer
            .install_set_deferred(
                &[1, 2],
                vec![(2, v2, s2)],
                Vec::new(),
                Arc::new(InMemorySubgraph::from_edges(&[])),
            )
            .unwrap();
        assert_eq!(evicted[0].id, 0);
        // While 0's write-back is pending, its disk bytes are stale:
        // installing a copy read from disk must fail.
        let (v0, s0) = buffer.store().read_partition(0).unwrap();
        let err = buffer
            .install_set(
                &[0, 1],
                vec![(0, v0, s0)],
                Vec::new(),
                Arc::new(InMemorySubgraph::from_edges(&[])),
            )
            .unwrap_err();
        assert!(format!("{err}").contains("pending write-back"));
        // After draining, the same install succeeds.
        let e = &evicted[0];
        buffer
            .store()
            .write_partition(e.id, &e.values, &e.state)
            .unwrap();
        buffer.writeback_ledger().mark_drained(e.id);
        let (v0, s0) = buffer.store().read_partition(0).unwrap();
        buffer
            .install_set(
                &[0, 1],
                vec![(0, v0, s0)],
                Vec::new(),
                Arc::new(InMemorySubgraph::from_edges(&[])),
            )
            .unwrap();
    }

    #[test]
    fn flush_waits_for_async_drain() {
        let (mut buffer, _) = build_buffer("flush-drain", 40, 4, 2, true);
        buffer.load_set(&[0, 1]).unwrap();
        let node = buffer.assignment().nodes_in(0)[0];
        buffer.apply_update(&[node], &Tensor::ones(1, 4)).unwrap();
        let (v2, s2) = buffer.store().read_partition(2).unwrap();
        let (_, evicted) = buffer
            .install_set_deferred(
                &[1, 2],
                vec![(2, v2, s2)],
                Vec::new(),
                Arc::new(InMemorySubgraph::from_edges(&[])),
            )
            .unwrap();
        let ledger = buffer.writeback_ledger();
        let store = buffer.store().clone();
        // Drain on another thread after a delay; flush must block until the
        // write has landed before returning.
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            for e in &evicted {
                store.write_partition(e.id, &e.values, &e.state).unwrap();
                ledger.mark_drained(e.id);
            }
        });
        buffer.flush().unwrap();
        assert_eq!(buffer.writeback_ledger().pending_count(), 0);
        drainer.join().unwrap();
        // Partition 0's update is on disk even though 0 is no longer resident.
        let (_, state) = buffer.store().read_partition(0).unwrap();
        let offset = buffer
            .assignment()
            .nodes_in(0)
            .iter()
            .position(|&n| n == node)
            .unwrap();
        assert!(state[offset * 4..(offset + 1) * 4].iter().all(|&s| s > 0.0));
    }

    #[test]
    fn gather_coalesces_consecutive_rows_bitwise_identically() {
        use marius_graph::PartitionAssignment;
        // Contiguous layout: partition 0 holds nodes 0..=5, partition 1 holds
        // 6..=11 — a sorted gather spanning both collapses to two copies.
        let assignment =
            PartitionAssignment::from_vec(vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1], 2).unwrap();
        let store = PartitionStore::open_temp("gather-runs").unwrap();
        store.clear().unwrap();
        let dim = 3usize;
        for p in 0..2u32 {
            let nodes = assignment.nodes_in(p);
            let values: Vec<f32> = nodes
                .iter()
                .flat_map(|&n| (0..dim).map(move |d| n as f32 * 100.0 + d as f32))
                .collect();
            let state = vec![0.0; values.len()];
            store.write_partition(p, &values, &state).unwrap();
        }
        let mut buffer = PartitionBuffer::new(store, assignment, dim, 2, true);
        buffer.load_set(&[0, 1]).unwrap();
        // A run across the partition boundary, a reversed (non-coalescible)
        // order, and repeats.
        for nodes in [
            vec![3u64, 4, 5, 6, 7],
            vec![7, 6, 5, 4],
            vec![2, 2, 3, 3],
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
        ] {
            let t = buffer.gather(&nodes).unwrap();
            for (i, &n) in nodes.iter().enumerate() {
                for d in 0..dim {
                    assert_eq!(t.get(i, d), n as f32 * 100.0 + d as f32, "node {n} dim {d}");
                }
            }
        }
    }

    #[test]
    fn resident_nodes_lists_every_node_of_resident_partitions() {
        let (mut buffer, _) = build_buffer("resident-nodes", 40, 4, 2, true);
        buffer.load_set(&[2, 3]).unwrap();
        let nodes = buffer.resident_nodes();
        let expected =
            buffer.assignment().nodes_in(2).len() + buffer.assignment().nodes_in(3).len();
        assert_eq!(nodes.len(), expected);
        assert!(nodes.iter().all(|&n| buffer.is_resident(n)));
    }
}
