//! Deterministic IO fault injection: the fault model, error taxonomy, and
//! retry semantics of the storage layer.
//!
//! # Why inject faults
//!
//! The paper trains out-of-core on cheap cloud block storage (EBS-class
//! devices), where transient read/write errors, latency spikes, and
//! interrupted processes are the normal operating regime rather than the
//! exception. This module makes that regime *reproducible*: an
//! [`IoFaultPlan`] is a seed-driven schedule of injected faults, pluggable
//! into [`crate::disk::PartitionStore`] alongside
//! [`crate::disk::PartitionStore::with_emulated_device`], so every chaos
//! scenario can be replayed exactly from its seed.
//!
//! # The fault model
//!
//! The injector sits at the boundary between the store and the filesystem
//! and can produce four kinds of events, each decided deterministically:
//!
//! * **Transient read/write failures** — the operation fails with
//!   [`StorageError::Transient`]; a retry of the same operation re-rolls the
//!   decision. A cap ([`IoFaultPlan::max_consecutive`]) bounds how many times
//!   the *same* logical operation may fail in a row, so any transient plan
//!   whose cap is below the retry budget is guaranteed survivable.
//! * **Torn writes** — a failing write first leaves a partial `*.tmp`
//!   staging sibling behind, emulating a crash mid-write. The destination
//!   file is never torn (the store only renames complete temp files into
//!   place); the litter is overwritten by the retry and swept by
//!   [`crate::disk::PartitionStore::open`].
//! * **Latency spikes** — the operation succeeds after an injected delay,
//!   emulating tail latency.
//! * **Outages and permanent failures** — a window of the global operation
//!   sequence during which every operation fails transiently (an
//!   [`Outage`]), or a point after which every operation fails permanently.
//!   Both can be armed mid-run through the shared [`FaultInjector`] handle,
//!   which chaos tests use to fault a specific phase of training without
//!   estimating operation counts.
//!
//! # Determinism
//!
//! Per-operation decisions are keyed on a stable operation key (for example
//! `"partition/3"` or `"bucket/0_2"`) and a per-key access counter, *not* on
//! global ordering — so the schedule a given operation sees is independent of
//! how pipeline threads interleave. Outage/permanent windows use the global
//! operation counter (they model the device, not an operation), and chaos
//! tests arm them relative to the current count.
//!
//! # Error taxonomy and retry semantics
//!
//! [`StorageError`] splits faults into *transient* (safe to retry:
//! [`StorageError::Transient`] and interrupted/timed-out [`StorageError::Io`]
//! kinds) and *permanent* (everything else, including
//! [`StorageError::Pipeline`], which wraps a failed or panicked pipeline
//! stage). The store wraps partition reads, bucket IO, write-back flushes,
//! and checkpoint placement in the bounded exponential-backoff retry of
//! [`crate::retry`]; a transient fault therefore slows training down instead
//! of aborting it, and — because retries happen entirely below the pipeline —
//! a retried run's loss trajectory is bit-identical to a fault-free run.
//! Exhausting the retry budget, or hitting a permanent fault, surfaces a
//! typed error through the pipeline's supervision layer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::{Result, StorageError};

/// FNV-1a hash of `bytes` (stable across runs and platforms).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of a 64-bit value.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform float in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The kind of storage operation being checked against the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Read,
    Write,
}

/// A window of the global operation sequence during which every operation
/// fails transiently (a device outage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First global operation index inside the outage.
    pub start_op: u64,
    /// Number of operations the outage lasts.
    pub ops: u64,
}

/// A seed-driven schedule of injected IO faults.
///
/// Sibling of [`crate::io_model::IoCostModel`]: where the cost model answers
/// "how slow is this device", the fault plan answers "how does it fail".
/// Build one with a constructor, customize fields, then attach it to a store
/// via [`crate::disk::PartitionStore::with_fault_injector`] (or through the
/// trainer/session facades).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultPlan {
    /// Seed from which every decision is derived.
    pub seed: u64,
    /// Probability that a read fails transiently.
    pub read_fail: f64,
    /// Probability that a write fails transiently.
    pub write_fail: f64,
    /// Probability that a failing write also leaves a torn `*.tmp` prefix.
    pub torn_write: f64,
    /// Probability that a successful operation suffers a latency spike.
    pub latency_spike: f64,
    /// Duration of an injected latency spike.
    pub spike: Duration,
    /// Upper bound on consecutive transient failures of one logical
    /// operation. Keep this below the retry budget to guarantee the plan is
    /// survivable.
    pub max_consecutive: u32,
    /// Optional outage window over the global operation sequence.
    pub outage: Option<Outage>,
    /// Optional global operation index after which every operation fails
    /// permanently.
    pub permanent_after: Option<u64>,
}

impl IoFaultPlan {
    /// A plan that injects nothing (useful as a base, or to obtain a shared
    /// [`FaultInjector`] handle that is armed later).
    pub fn quiet(seed: u64) -> Self {
        IoFaultPlan {
            seed,
            read_fail: 0.0,
            write_fail: 0.0,
            torn_write: 0.0,
            latency_spike: 0.0,
            spike: Duration::ZERO,
            max_consecutive: 2,
            outage: None,
            permanent_after: None,
        }
    }

    /// The standard transient regime used by the chaos suite: ~8% of reads
    /// and writes fail transiently, a quarter of failing writes tear, 2% of
    /// operations see a small latency spike. Survivable under the default
    /// retry budget (`max_consecutive = 2 < 4 retries`).
    pub fn flaky(seed: u64) -> Self {
        IoFaultPlan {
            read_fail: 0.08,
            write_fail: 0.08,
            torn_write: 0.25,
            latency_spike: 0.02,
            spike: Duration::from_micros(200),
            ..IoFaultPlan::quiet(seed)
        }
    }

    /// A plan whose only fault is an [`Outage`] window.
    pub fn outage(seed: u64, start_op: u64, ops: u64) -> Self {
        IoFaultPlan {
            outage: Some(Outage { start_op, ops }),
            ..IoFaultPlan::quiet(seed)
        }
    }

    /// A plan where every operation from global index `after_ops` fails
    /// permanently (a dead device).
    pub fn permanent(seed: u64, after_ops: u64) -> Self {
        IoFaultPlan {
            permanent_after: Some(after_ops),
            ..IoFaultPlan::quiet(seed)
        }
    }

    /// Builds the stateful injector for this plan.
    pub fn build(self) -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new(self))
    }
}

#[derive(Debug, Default)]
struct KeyState {
    /// How many times this key has been checked (drives the decision hash).
    accesses: u64,
    /// Current run of consecutive injected failures for this key.
    consecutive: u32,
}

/// The stateful engine that evaluates an [`IoFaultPlan`].
///
/// Shared (`Arc`) between the store clones of a run — and, in recovery
/// scenarios, across trainer restarts, so a one-shot outage window is not
/// replayed by the restarted run. All counters are monotonic; the store
/// snapshots them per epoch.
#[derive(Debug)]
pub struct FaultInjector {
    plan: IoFaultPlan,
    /// Global operation counter (drives outage/permanent windows).
    ops: AtomicU64,
    /// Per-key access counters and consecutive-failure runs.
    keys: Mutex<HashMap<u64, KeyState>>,
    /// Total faults injected (transient + permanent + torn).
    faults: AtomicU64,
    /// Total latency spikes injected.
    spikes: AtomicU64,
    /// Armed outage window start (u64::MAX = disarmed).
    outage_start: AtomicU64,
    /// Armed outage window end (exclusive).
    outage_end: AtomicU64,
    /// Armed permanent-failure threshold (u64::MAX = disarmed).
    permanent_after: AtomicU64,
}

impl FaultInjector {
    fn new(plan: IoFaultPlan) -> Self {
        let (outage_start, outage_end) = match plan.outage {
            Some(o) => (o.start_op, o.start_op.saturating_add(o.ops)),
            None => (u64::MAX, u64::MAX),
        };
        FaultInjector {
            ops: AtomicU64::new(0),
            keys: Mutex::new(HashMap::new()),
            faults: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
            outage_start: AtomicU64::new(outage_start),
            outage_end: AtomicU64::new(outage_end),
            permanent_after: AtomicU64::new(plan.permanent_after.unwrap_or(u64::MAX)),
            plan,
        }
    }

    /// The plan this injector evaluates.
    pub fn plan(&self) -> &IoFaultPlan {
        &self.plan
    }

    /// Total storage operations checked so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Total faults injected so far (monotonic).
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Total latency spikes injected so far (monotonic).
    pub fn spikes_injected(&self) -> u64 {
        self.spikes.load(Ordering::Relaxed)
    }

    /// Arms a transient outage window starting `delay_ops` operations from
    /// now and lasting `ops` operations. Chaos tests use this (for example
    /// from an epoch hook) to place an outage in a specific phase of
    /// training without estimating absolute operation counts.
    pub fn arm_outage(&self, delay_ops: u64, ops: u64) {
        let start = self.ops_seen().saturating_add(delay_ops);
        self.outage_start.store(start, Ordering::Relaxed);
        self.outage_end
            .store(start.saturating_add(ops), Ordering::Relaxed);
    }

    /// Arms a permanent device failure starting `delay_ops` operations from
    /// now.
    pub fn arm_permanent(&self, delay_ops: u64) {
        self.permanent_after
            .store(self.ops_seen().saturating_add(delay_ops), Ordering::Relaxed);
    }

    /// Checks a read operation against the plan.
    pub fn check_read(&self, key: &str) -> Result<()> {
        self.check(FaultKind::Read, key, |_| {})
    }

    /// Checks a write operation against the plan. `torn` is invoked with the
    /// fraction of the payload to tear when the plan injects a torn write
    /// (the store writes that prefix to the `*.tmp` staging sibling).
    pub fn check_write(&self, key: &str, torn: impl FnOnce(f64)) -> Result<()> {
        self.check(FaultKind::Write, key, torn)
    }

    fn check(&self, kind: FaultKind, key: &str, torn: impl FnOnce(f64)) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);

        if op >= self.permanent_after.load(Ordering::Relaxed) {
            self.faults.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Io(std::io::Error::other(format!(
                "injected permanent device failure on {key} (op {op})"
            ))));
        }
        if op >= self.outage_start.load(Ordering::Relaxed)
            && op < self.outage_end.load(Ordering::Relaxed)
        {
            self.faults.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Transient {
                reason: format!("injected device outage on {key} (op {op})"),
            });
        }

        let key_hash = fnv1a(key.as_bytes()) ^ (kind as u64).wrapping_mul(0x9e37_79b9);
        let p_fail = match kind {
            FaultKind::Read => self.plan.read_fail,
            FaultKind::Write => self.plan.write_fail,
        };
        // Decide under the lock (cheap hashes only); sleep outside it.
        let decision = {
            let mut keys = self.keys.lock().unwrap_or_else(PoisonError::into_inner);
            let state = keys.entry(key_hash).or_default();
            let nth = state.accesses;
            state.accesses += 1;
            let roll =
                splitmix64(self.plan.seed ^ key_hash ^ nth.wrapping_mul(0xd134_2543_de82_ef95));
            if unit(roll) < p_fail && state.consecutive < self.plan.max_consecutive {
                state.consecutive += 1;
                Err(unit(splitmix64(roll)))
            } else {
                state.consecutive = 0;
                Ok(unit(splitmix64(roll ^ 0x5bf0_3635)))
            }
        };
        match decision {
            Err(tear_roll) => {
                self.faults.fetch_add(1, Ordering::Relaxed);
                if kind == FaultKind::Write && tear_roll < self.plan.torn_write {
                    // Tear between 10% and 90% of the payload.
                    torn(0.1 + 0.8 * tear_roll / self.plan.torn_write.max(f64::MIN_POSITIVE));
                }
                Err(StorageError::Transient {
                    reason: format!("injected transient {kind:?} fault on {key}"),
                })
            }
            Ok(spike_roll) => {
                if spike_roll < self.plan.latency_spike && !self.plan.spike.is_zero() {
                    self.spikes.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.plan.spike);
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let inj = IoFaultPlan::quiet(7).build();
        for i in 0..100 {
            inj.check_read(&format!("partition/{}", i % 4)).unwrap();
            inj.check_write(&format!("partition/{}", i % 4), |_| panic!("torn"))
                .unwrap();
        }
        assert_eq!(inj.faults_injected(), 0);
        assert_eq!(inj.ops_seen(), 200);
    }

    #[test]
    fn flaky_plan_replays_identically_and_respects_the_consecutive_cap() {
        let plan = IoFaultPlan {
            spike: Duration::ZERO,
            ..IoFaultPlan::flaky(99)
        };
        let a = plan.build();
        let b = plan.build();
        let mut run = 0u32;
        for i in 0..400u64 {
            let key = format!("bucket/{}_{}", i % 3, i % 2);
            let ra = a.check_read(&key).is_err();
            let rb = b.check_read(&key).is_err();
            assert_eq!(ra, rb, "replay diverged at op {i}");
        }
        assert_eq!(a.faults_injected(), b.faults_injected());
        assert!(a.faults_injected() > 0, "flaky plan never fired");
        // Hammer a single key: failure runs must respect the cap.
        let c = plan.build();
        for _ in 0..400 {
            if c.check_read("partition/0").is_err() {
                run += 1;
                assert!(run <= plan.max_consecutive, "consecutive cap exceeded");
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn outage_window_fails_transiently_then_recovers() {
        let inj = IoFaultPlan::outage(1, 5, 10).build();
        let mut failed = 0;
        for _ in 0..30 {
            match inj.check_read("partition/1") {
                Ok(()) => {}
                Err(e) => {
                    assert!(e.is_transient());
                    failed += 1;
                }
            }
        }
        assert_eq!(failed, 10);
        assert!(inj.check_read("partition/1").is_ok());
    }

    #[test]
    fn armed_permanent_failure_is_not_transient() {
        let inj = IoFaultPlan::quiet(3).build();
        inj.check_read("partition/0").unwrap();
        inj.arm_permanent(2);
        inj.check_read("partition/0").unwrap();
        inj.check_write("partition/0", |_| {}).unwrap();
        let err = inj.check_read("partition/0").unwrap_err();
        assert!(!err.is_transient());
        assert!(inj.check_write("partition/0", |_| {}).is_err());
    }

    #[test]
    fn torn_write_callback_fires_with_a_bounded_fraction() {
        let plan = IoFaultPlan {
            write_fail: 1.0,
            torn_write: 1.0,
            max_consecutive: u32::MAX,
            spike: Duration::ZERO,
            ..IoFaultPlan::quiet(11)
        };
        let inj = plan.build();
        let mut fractions = Vec::new();
        for _ in 0..20 {
            let _ = inj.check_write("partition/2", |f| fractions.push(f));
        }
        assert_eq!(fractions.len(), 20);
        assert!(fractions.iter().all(|f| (0.1..=0.9).contains(f)));
    }
}
