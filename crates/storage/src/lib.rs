//! Out-of-core storage layer for the MariusGNN reproduction.
//!
//! This crate implements the paper's storage layer (Figure 2, steps A–D):
//!
//! * [`disk::PartitionStore`] — node partitions (embedding values plus optimizer
//!   state) and edge buckets persisted as flat binary files, with an
//!   instrumented IO counter so experiments can report bytes moved, read counts
//!   and the smallest read size (the quantities §6 reasons about).
//! * [`buffer::PartitionBuffer`] — the fixed-capacity CPU buffer that holds `c`
//!   physical partitions and the `c²` edge buckets between them, swaps
//!   partitions according to a replacement policy, and serves embedding
//!   gathers/updates for mini-batch training.
//! * [`policy`] — partition replacement and mini-batch assignment policies:
//!   [`policy::CometPolicy`] (the paper's contribution, §5.1),
//!   [`policy::BetaPolicy`] (the prior state of the art from Marius, used as the
//!   baseline in Table 8), a trivial in-memory policy, and the training-node
//!   caching policy for node classification (§5.2).
//! * [`tuning`] — the Edge Permutation Bias metric `B` (§6) and the auto-tuning
//!   rules that pick the number of physical partitions `p`, logical partitions
//!   `l` and buffer capacity `c`.
//! * [`io_model::IoCostModel`] — a bandwidth/IOPS/block-size model of the
//!   paper's EBS volume used by the benchmark harnesses to translate measured IO
//!   volume into epoch-time analogues, and by
//!   [`disk::PartitionStore::with_emulated_device`] to slow the store down to a
//!   real device's speed for overlap experiments.
//!
//! # The asynchronous (pipelined) path
//!
//! The storage layer is consumed from two execution modes. The sequential
//! trainers call [`buffer::PartitionBuffer::load_set`], which performs every
//! disk read inline. The staged runtime in `marius-pipeline` instead reads
//! partition and bucket files on dedicated prefetcher threads — the
//! [`disk::PartitionStore`] is `Send + Sync` (plain paths plus atomic IO
//! counters), so any number of threads may read concurrently — and hands the
//! already-deserialized data to the compute thread, which swaps it into the
//! buffer with [`buffer::PartitionBuffer::install_set_deferred`] without
//! touching the store's read path. Write-backs of dirty partitions are
//! *detached* from the swap as owned [`buffer::EvictedPartition`] payloads and
//! drained to the store by a dedicated write-back thread while the next step
//! computes; the shared [`buffer::WritebackLedger`] (plus the pipeline's
//! write-back watermark) guarantees a partition's file is never re-read before
//! its pending write-back lands, and [`disk::PartitionStore::write_partition`]
//! renames completed temp files into place so no reader can observe a torn
//! partition even across an abort.

pub mod buffer;
pub mod disk;
pub mod fault;
pub mod io_model;
pub mod policy;
pub mod retry;
pub mod tuning;

pub use buffer::{BufferStats, EvictedPartition, PartitionBuffer, WritebackLedger};
pub use disk::{atomic_write, partition_digest, IoStats, PartitionStore};
pub use fault::{FaultInjector, IoFaultPlan, Outage};
pub use io_model::IoCostModel;
pub use policy::{BetaPolicy, CometPolicy, EpochPlan, InMemoryPolicy, NodeCachePolicy};
pub use retry::RetryPolicy;
pub use tuning::{auto_tune, edge_permutation_bias, TuningConfig};

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A request referenced a partition or bucket that is not resident/known.
    NotResident {
        /// Human readable description.
        reason: String,
    },
    /// A policy was asked to produce an invalid plan (for example a buffer
    /// capacity larger than the partition count).
    InvalidPlan {
        /// Human readable description.
        reason: String,
    },
    /// A checkpoint could not be written, read, or validated (missing files,
    /// checksum mismatches, manifest/blob shape mismatches, version skew).
    Checkpoint {
        /// Human readable description.
        reason: String,
    },
    /// A transient fault: the operation is safe to retry and is expected to
    /// succeed eventually (injected faults, interrupted syscalls, device
    /// timeouts). See [`fault`] for the taxonomy and retry semantics.
    Transient {
        /// Human readable description.
        reason: String,
    },
    /// A pipeline stage failed or panicked; wraps the root cause with the
    /// stage that raised it. Always permanent: by the time a fault surfaces
    /// here the retry budget below it is already spent.
    Pipeline {
        /// The stage that failed (for example `"writeback-drain"`).
        stage: String,
        /// Root-cause description.
        reason: String,
    },
}

impl StorageError {
    /// Convenience constructor for checkpoint failures.
    pub fn checkpoint(reason: impl Into<String>) -> Self {
        StorageError::Checkpoint {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for transient failures.
    pub fn transient(reason: impl Into<String>) -> Self {
        StorageError::Transient {
            reason: reason.into(),
        }
    }

    /// Whether this error is safe to retry. The retry layer in [`retry`]
    /// only re-attempts operations whose error is transient; everything else
    /// surfaces immediately as permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Transient { .. } => true,
            StorageError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::NotResident { reason } => write!(f, "not resident: {reason}"),
            StorageError::InvalidPlan { reason } => write!(f, "invalid plan: {reason}"),
            StorageError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            StorageError::Transient { reason } => write!(f, "transient io error: {reason}"),
            StorageError::Pipeline { stage, reason } => {
                write!(f, "pipeline stage '{stage}' failed: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = StorageError::NotResident {
            reason: "partition 3".into(),
        };
        assert!(format!("{e}").contains("partition 3"));
        let e = StorageError::InvalidPlan {
            reason: "capacity".into(),
        };
        assert!(format!("{e}").contains("capacity"));
        let e: StorageError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(format!("{e}").contains("gone"));
        let e = StorageError::transient("blip");
        assert!(format!("{e}").contains("blip"));
        let e = StorageError::Pipeline {
            stage: "compute".into(),
            reason: "boom".into(),
        };
        assert!(format!("{e}").contains("compute") && format!("{e}").contains("boom"));
    }

    #[test]
    fn transient_classification() {
        assert!(StorageError::transient("blip").is_transient());
        let e: StorageError = std::io::Error::new(std::io::ErrorKind::Interrupted, "eintr").into();
        assert!(e.is_transient());
        let e: StorageError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(!e.is_transient());
        assert!(!StorageError::checkpoint("bad").is_transient());
        let e = StorageError::Pipeline {
            stage: "compute".into(),
            reason: "boom".into(),
        };
        assert!(!e.is_transient());
    }
}
