//! On-disk partition and edge-bucket files.
//!
//! The authoritative copy of the graph during out-of-core training lives on disk:
//! one file per node partition (embedding rows plus Adagrad state, stored
//! contiguously) and one file per edge bucket `(i, j)` (fixed-width binary edge
//! records). Files are plain little-endian buffers so reads and writes are single
//! sequential transfers — the access pattern whose size §6 reasons about when it
//! bounds the number of physical partitions.

use crate::fault::{FaultInjector, IoFaultPlan};
use crate::io_model::IoCostModel;
use crate::retry::{self, RetryPolicy};
use crate::{Result, StorageError};
use marius_graph::{Edge, PartitionId};
use marius_telemetry::{Counter, Telemetry};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Extension of the temporary siblings every atomic placement goes through.
/// Readers (and [`PartitionStore::snapshot_to`] / [`PartitionStore::restore_from`])
/// skip files carrying it: a `.tmp` sibling is by definition an incomplete
/// write that a crash may have abandoned.
const TMP_EXTENSION: &str = "tmp";

/// The temporary sibling a file is staged at before its atomic rename.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".");
    name.push(TMP_EXTENSION);
    path.with_file_name(name)
}

/// `true` for paths staged by [`atomic_place`] but never renamed (torn writes
/// abandoned by a crash).
fn is_tmp(path: &Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some(TMP_EXTENSION)
}

/// Places a file at `dst` atomically: `fill` produces the complete content at
/// a temporary sibling path, which is then renamed over `dst`. Readers observe
/// either the old file or the new one, never a torn intermediate — the shared
/// idiom behind [`PartitionStore::write_partition`], bucket writes, and the
/// checkpoint snapshot path.
fn atomic_place<F>(dst: &Path, fill: F) -> std::io::Result<()>
where
    F: FnOnce(&Path) -> std::io::Result<()>,
{
    let tmp = tmp_sibling(dst);
    fill(&tmp)?;
    fs::rename(&tmp, dst)
}

/// Atomically writes `bytes` to `path` (temp-file + rename). A reader — or a
/// process resuming after a crash — observes either the previous content or
/// the full new content, never a prefix. Shared by partition/bucket writes and
/// by the checkpoint layer (manifests and `LATEST` pointers).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    atomic_place(path, |tmp| {
        let mut file = fs::File::create(tmp)?;
        file.write_all(bytes)
    })
}

/// FNV-1a digest of a value block's exact bit patterns (little-endian), used
/// by read-side verification: a reader that remembers the digest of a block it
/// handed out can later detect an in-memory corruption of its cached copy and
/// fall back to re-reading the file. Stable across runs and platforms.
pub fn partition_digest(values: &[f32]) -> u64 {
    values.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, v| {
        v.to_le_bytes().iter().fold(h, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        })
    })
}

/// Atomically materialises `src`'s bytes at `dst`: hard-links when the two
/// paths share a filesystem (snapshots of multi-gigabyte partition files cost
/// one directory entry), falling back to a full copy. Because every mutation
/// of a store file goes through a rename, a hard-linked snapshot keeps the old
/// inode when the store later rewrites the partition — links never alias
/// future writes.
fn atomic_link_or_copy(src: &Path, dst: &Path) -> std::io::Result<()> {
    atomic_place(dst, |tmp| {
        let _ = fs::remove_file(tmp);
        if fs::hard_link(src, tmp).is_ok() {
            return Ok(());
        }
        fs::copy(src, tmp).map(|_| ())
    })
}

/// Counters describing the IO a [`PartitionStore`] has performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Total bytes read from disk.
    pub bytes_read: u64,
    /// Total bytes written to disk.
    pub bytes_written: u64,
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Size in bytes of the smallest read performed (0 if none yet).
    pub min_read_bytes: u64,
    /// Number of transparently retried operations (transient faults absorbed
    /// by the store's [`RetryPolicy`] without surfacing to callers).
    pub io_retries: u64,
    /// Number of faults injected by the attached
    /// [`crate::fault::FaultInjector`], if any (0 on real devices).
    pub faults_injected: u64,
    /// Total time operations spent blocked on the emulated device's
    /// reservation queue ([`PartitionStore::with_emulated_device`]); zero on
    /// real devices, where the OS hides queueing from the process.
    pub throttle_wait: Duration,
}

#[derive(Debug, Default)]
struct IoCounters {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    min_read_bytes: AtomicU64,
    io_retries: AtomicU64,
    throttle_wait_ns: AtomicU64,
    /// The injector's monotonic fault count at the last
    /// [`PartitionStore::reset_io_stats`], so per-epoch snapshots report a
    /// delta like every other counter.
    faults_baseline: AtomicU64,
}

impl IoCounters {
    fn record_read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
        // Track the minimum non-zero read size.
        let mut current = self.min_read_bytes.load(Ordering::Relaxed);
        loop {
            if current != 0 && current <= bytes {
                break;
            }
            match self.min_read_bytes.compare_exchange(
                current,
                bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(v) => current = v,
            }
        }
    }

    fn record_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> IoStats {
        IoStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            min_read_bytes: self.min_read_bytes.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            faults_injected: 0,
            throttle_wait: Duration::from_nanos(self.throttle_wait_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Live telemetry counter handles mirroring the store's IO activity into a
/// [`Telemetry`] registry under `storage.*` names. All handles are no-ops
/// until a recorder is attached via [`PartitionStore::with_telemetry`].
#[derive(Debug, Default, Clone)]
struct StoreTelemetry {
    reads: Counter,
    writes: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    io_retries: Counter,
    faults_injected: Counter,
    throttle_wait_ns: Counter,
}

impl StoreTelemetry {
    fn attach(telemetry: &Telemetry) -> Self {
        StoreTelemetry {
            reads: telemetry.counter("storage.reads"),
            writes: telemetry.counter("storage.writes"),
            bytes_read: telemetry.counter("storage.bytes_read"),
            bytes_written: telemetry.counter("storage.bytes_written"),
            io_retries: telemetry.counter("storage.io_retries"),
            faults_injected: telemetry.counter("storage.faults_injected"),
            throttle_wait_ns: telemetry.counter("storage.throttle_wait_ns"),
        }
    }
}

/// A single-queue emulated block device shared by every clone of a store:
/// each op reserves `transfer_time(bytes, 1)` of exclusive device time, so
/// concurrent readers (e.g. the pipeline's prefetcher threads) contend for
/// one volume's bandwidth instead of multiplying it.
#[derive(Debug)]
struct DeviceGate {
    model: IoCostModel,
    /// When the emulated device next becomes idle.
    next_free: Mutex<Instant>,
}

impl DeviceGate {
    fn new(model: IoCostModel) -> Self {
        DeviceGate {
            model,
            next_free: Mutex::new(Instant::now()),
        }
    }

    /// Reserves device time for one op of `bytes` and sleeps until the
    /// reservation has elapsed. Returns the time actually slept — the
    /// reservation wait that was invisible before throttle-wait accounting.
    fn charge(&self, bytes: u64) -> Duration {
        let cost = self.model.transfer_time(bytes, 1);
        let finish = {
            // Recover rather than cascade if a peer thread panicked while
            // holding the gate: the state is a single Instant, never torn.
            let mut next_free = self
                .next_free
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let start = (*next_free).max(Instant::now());
            *next_free = start + cost;
            *next_free
        };
        let now = Instant::now();
        if finish > now {
            let wait = finish - now;
            std::thread::sleep(wait);
            wait
        } else {
            Duration::ZERO
        }
    }
}

/// A directory of node-partition and edge-bucket files with instrumented IO.
///
/// Local filesystems (and the page cache) are far faster than the cloud block
/// volume the paper evaluates against, so the store can optionally *emulate* a
/// device: with [`PartitionStore::with_emulated_device`], every read and write
/// reserves the time the [`IoCostModel`] charges for its bytes on a single
/// shared device queue (clones share the queue, so concurrent threads contend
/// for one volume's bandwidth). The out-of-core benchmarks use this to
/// reproduce the paper's IO regime, where a prefetching pipeline has real
/// latency to hide.
#[derive(Debug, Clone)]
pub struct PartitionStore {
    root: PathBuf,
    counters: Arc<IoCounters>,
    /// When set, reads/writes are slowed to this shared device emulation.
    throttle: Option<Arc<DeviceGate>>,
    /// When set, reads/writes are checked against this deterministic fault
    /// schedule (see [`crate::fault`]).
    faults: Option<Arc<FaultInjector>>,
    /// Retry policy applied to every fallible store operation.
    retry: RetryPolicy,
    /// Live `storage.*` counters (no-ops unless a recorder is attached).
    telemetry: StoreTelemetry,
}

impl PartitionStore {
    /// Opens (creating if necessary) a partition store rooted at `root`.
    ///
    /// Stale `*.tmp` staging files left behind by an interrupted atomic
    /// write (a crash, or an injected torn write) are swept on open: they
    /// are torn by definition and no reader ever observes them, but leaving
    /// them around leaks disk and confuses directory listings.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        fs::create_dir_all(root.as_ref())?;
        for entry in fs::read_dir(root.as_ref())? {
            let path = entry?.path();
            if path.is_file() && is_tmp(&path) {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(PartitionStore {
            root: root.as_ref().to_path_buf(),
            counters: Arc::new(IoCounters::default()),
            throttle: None,
            faults: None,
            retry: RetryPolicy::default_transient(),
            telemetry: StoreTelemetry::default(),
        })
    }

    /// Emulates a block device: every subsequent read/write op (from this
    /// store and all clones of it) reserves `model.transfer_time(bytes, 1)`
    /// of exclusive device time on a shared queue and sleeps it out. Used by
    /// benchmark harnesses to measure pipelining against the paper's
    /// EBS-like volume instead of the local page cache.
    pub fn with_emulated_device(mut self, model: IoCostModel) -> Self {
        self.throttle = Some(Arc::new(DeviceGate::new(model)));
        self
    }

    /// Attaches a deterministic fault injector (shared by every clone of
    /// this store): each subsequent operation is checked against the
    /// injector's schedule and may fail transiently, fail permanently, tear
    /// its staging file, or suffer a latency spike. Sibling of
    /// [`PartitionStore::with_emulated_device`]; see [`crate::fault`].
    pub fn with_fault_injector(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Convenience: builds and attaches the injector for `plan`.
    pub fn with_fault_plan(self, plan: IoFaultPlan) -> Self {
        self.with_fault_injector(plan.build())
    }

    /// Overrides the retry policy applied to every store operation
    /// (defaults to [`RetryPolicy::default_transient`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The fault injector attached to this store, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Attaches live telemetry counters (`storage.reads`, `storage.writes`,
    /// `storage.bytes_read`, `storage.bytes_written`, `storage.io_retries`,
    /// `storage.faults_injected`, `storage.throttle_wait_ns`) mirroring this
    /// store's IO activity — including every clone taken *after* this call.
    /// With a disabled recorder the handles are no-ops and the hot path is
    /// unchanged.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = StoreTelemetry::attach(telemetry);
        self
    }

    /// Runs `op` under the store's retry policy, classifying errors through
    /// [`StorageError::is_transient`] and counting retries into the IO stats
    /// (and, when telemetry is attached, into the `storage.io_retries` /
    /// `storage.faults_injected` counters as deltas around the operation).
    fn retrying<T>(&self, key: &str, op: impl FnMut() -> Result<T>) -> Result<T> {
        if !self.telemetry.io_retries.is_enabled() {
            return retry::with_retry(
                &self.retry,
                self.retry.op_seed(key),
                &self.counters.io_retries,
                op,
            );
        }
        let retries_before = self.counters.io_retries.load(Ordering::Relaxed);
        let faults_before = self.faults.as_ref().map_or(0, |f| f.faults_injected());
        let out = retry::with_retry(
            &self.retry,
            self.retry.op_seed(key),
            &self.counters.io_retries,
            op,
        );
        let retries_after = self.counters.io_retries.load(Ordering::Relaxed);
        let faults_after = self.faults.as_ref().map_or(0, |f| f.faults_injected());
        self.telemetry
            .io_retries
            .add(retries_after.saturating_sub(retries_before));
        self.telemetry
            .faults_injected
            .add(faults_after.saturating_sub(faults_before));
        out
    }

    /// Checks a read against the fault schedule, if one is attached.
    fn check_read_fault(&self, key: &str) -> Result<()> {
        match &self.faults {
            Some(f) => f.check_read(key),
            None => Ok(()),
        }
    }

    /// Checks a write against the fault schedule. An injected torn write
    /// leaves a prefix of `bytes` at `path`'s staging sibling — exactly the
    /// litter a crash mid-[`atomic_write`] would leave — before failing.
    fn check_write_fault(&self, key: &str, path: &Path, bytes: &[u8]) -> Result<()> {
        match &self.faults {
            Some(f) => f.check_write(key, |frac| {
                let torn = ((bytes.len() as f64) * frac) as usize;
                let _ = fs::write(tmp_sibling(path), &bytes[..torn.min(bytes.len())]);
            }),
            None => Ok(()),
        }
    }

    /// Atomically places `bytes` at `path` under fault injection and retry.
    /// `key` is the stable operation key for the fault/jitter schedules.
    fn place(&self, key: &str, path: &Path, bytes: &[u8]) -> Result<()> {
        self.retrying(key, || {
            self.check_write_fault(key, path, bytes)?;
            atomic_write(path, bytes).map_err(StorageError::from)
        })
    }

    /// Atomically places `bytes` at `path` with the store's fault injection
    /// and retry applied, without charging the IO byte counters (the
    /// checkpoint writer uses this so durability traffic does not skew the
    /// per-epoch IO accounting; retries still count into `io_retries`).
    pub fn place_file(&self, key: &str, path: &Path, bytes: &[u8]) -> Result<()> {
        self.place(key, path, bytes)
    }

    /// Charges one op of `bytes` against the emulated device, if any, and
    /// accounts the reservation wait.
    fn throttle_op(&self, bytes: u64) {
        if let Some(gate) = &self.throttle {
            let waited = gate.charge(bytes);
            if !waited.is_zero() {
                self.counters.throttle_wait_ns.fetch_add(
                    u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                self.telemetry.throttle_wait_ns.add_duration(waited);
            }
        }
    }

    /// Records one read of `bytes` into the IO counters and telemetry.
    fn note_read(&self, bytes: u64) {
        self.counters.record_read(bytes);
        self.telemetry.reads.incr();
        self.telemetry.bytes_read.add(bytes);
    }

    /// Records one write of `bytes` into the IO counters and telemetry.
    fn note_write(&self, bytes: u64) {
        self.counters.record_write(bytes);
        self.telemetry.writes.incr();
        self.telemetry.bytes_written.add(bytes);
    }

    /// Opens a store in a fresh unique subdirectory of the system temp dir.
    /// Useful for tests and examples.
    pub fn open_temp(label: &str) -> Result<Self> {
        let unique = format!(
            "marius-store-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        );
        let dir = std::env::temp_dir().join(unique);
        Self::open(dir)
    }

    /// The root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Returns a snapshot of the IO counters.
    pub fn io_stats(&self) -> IoStats {
        let mut stats = self.counters.snapshot();
        if let Some(faults) = &self.faults {
            stats.faults_injected = faults
                .faults_injected()
                .saturating_sub(self.counters.faults_baseline.load(Ordering::Relaxed));
        }
        stats
    }

    /// Resets the IO counters (used between epochs by the experiment harnesses).
    pub fn reset_io_stats(&self) {
        self.counters.bytes_read.store(0, Ordering::Relaxed);
        self.counters.bytes_written.store(0, Ordering::Relaxed);
        self.counters.reads.store(0, Ordering::Relaxed);
        self.counters.writes.store(0, Ordering::Relaxed);
        self.counters.min_read_bytes.store(0, Ordering::Relaxed);
        self.counters.io_retries.store(0, Ordering::Relaxed);
        self.counters.throttle_wait_ns.store(0, Ordering::Relaxed);
        // The injector's fault counter is monotonic (it is shared across
        // clones and trainer restarts); re-baseline instead of resetting.
        if let Some(faults) = &self.faults {
            self.counters
                .faults_baseline
                .store(faults.faults_injected(), Ordering::Relaxed);
        }
    }

    fn partition_path(&self, id: PartitionId) -> PathBuf {
        self.root.join(format!("node_partition_{id}.bin"))
    }

    fn bucket_path(&self, src: PartitionId, dst: PartitionId) -> PathBuf {
        self.root.join(format!("edge_bucket_{src}_{dst}.bin"))
    }

    /// Writes a node partition: `values` and `state` are the embedding rows and
    /// optimizer state, stored back to back.
    ///
    /// The write is atomic with respect to concurrent readers: bytes land in a
    /// per-partition temporary file that is renamed over the real path only
    /// once complete, so a reader (e.g. the pipeline's prefetcher racing an
    /// aborted write-back drain) observes either the old or the new contents,
    /// never a torn file.
    pub fn write_partition(&self, id: PartitionId, values: &[f32], state: &[f32]) -> Result<()> {
        let mut buf = Vec::with_capacity(8 + (values.len() + state.len()) * 4);
        buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for s in state {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        self.place(&format!("partition/{id}"), &self.partition_path(id), &buf)?;
        self.note_write(buf.len() as u64);
        self.throttle_op(buf.len() as u64);
        Ok(())
    }

    /// Reads a node partition back as `(values, state)`.
    pub fn read_partition(&self, id: PartitionId) -> Result<(Vec<f32>, Vec<f32>)> {
        let key = format!("partition/{id}");
        self.retrying(&key, || {
            self.check_read_fault(&key)?;
            self.read_partition_once(id)
        })
    }

    /// Reads a node partition and structurally verifies the value block
    /// against the caller's expectation — the read-side twin of the write
    /// path's length header. A truncated, swapped, or stale snapshot file
    /// surfaces as a typed [`StorageError::Checkpoint`] instead of silently
    /// serving wrong embeddings. Transient faults retry exactly like
    /// [`PartitionStore::read_partition`]; the verification itself never
    /// retries (a shape mismatch is permanent).
    pub fn read_partition_expect(
        &self,
        id: PartitionId,
        expected_rows: usize,
        dim: usize,
    ) -> Result<(Vec<f32>, Vec<f32>)> {
        let (values, state) = self.read_partition(id)?;
        if values.len() != expected_rows * dim {
            return Err(StorageError::checkpoint(format!(
                "partition {id} holds {} values but the replayed assignment expects \
                 {expected_rows} rows × {dim}",
                values.len()
            )));
        }
        Ok((values, state))
    }

    /// One read attempt of a node partition (no fault check, no retry).
    fn read_partition_once(&self, id: PartitionId) -> Result<(Vec<f32>, Vec<f32>)> {
        let path = self.partition_path(id);
        let mut file = fs::File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::NotResident {
                    reason: format!("node partition {id} has no file at {}", path.display()),
                }
            } else {
                StorageError::Io(e)
            }
        })?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        self.note_read(buf.len() as u64);
        self.throttle_op(buf.len() as u64);
        if buf.len() < 8 {
            return Err(StorageError::NotResident {
                reason: format!("partition {id} file is truncated"),
            });
        }
        let value_len = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes")) as usize;
        let floats: Vec<f32> = buf[8..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        if floats.len() < value_len {
            return Err(StorageError::NotResident {
                reason: format!("partition {id} file is shorter than its header claims"),
            });
        }
        let values = floats[..value_len].to_vec();
        let state = floats[value_len..].to_vec();
        Ok((values, state))
    }

    /// Writes an edge bucket as fixed-width records.
    pub fn write_bucket(&self, src: PartitionId, dst: PartitionId, edges: &[Edge]) -> Result<()> {
        let mut buf = Vec::with_capacity(edges.len() * Edge::DISK_BYTES);
        for e in edges {
            buf.extend_from_slice(&e.src.to_le_bytes());
            buf.extend_from_slice(&e.dst.to_le_bytes());
            buf.extend_from_slice(&e.rel.to_le_bytes());
        }
        self.place(
            &format!("bucket/{src}_{dst}"),
            &self.bucket_path(src, dst),
            &buf,
        )?;
        self.note_write(buf.len() as u64);
        self.throttle_op(buf.len() as u64);
        Ok(())
    }

    /// Reads an edge bucket. A missing file is treated as an empty bucket (empty
    /// buckets are common and not all of them are materialised).
    pub fn read_bucket(&self, src: PartitionId, dst: PartitionId) -> Result<Vec<Edge>> {
        let key = format!("bucket/{src}_{dst}");
        self.retrying(&key, || {
            self.check_read_fault(&key)?;
            self.read_bucket_once(src, dst)
        })
    }

    /// One read attempt of an edge bucket (no fault check, no retry).
    fn read_bucket_once(&self, src: PartitionId, dst: PartitionId) -> Result<Vec<Edge>> {
        let path = self.bucket_path(src, dst);
        let buf = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StorageError::Io(e)),
        };
        self.note_read(buf.len().max(1) as u64);
        self.throttle_op(buf.len().max(1) as u64);
        let mut edges = Vec::with_capacity(buf.len() / Edge::DISK_BYTES);
        for rec in buf.chunks_exact(Edge::DISK_BYTES) {
            let src_id = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let dst_id = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
            let rel = u32::from_le_bytes(rec[16..20].try_into().expect("4 bytes"));
            edges.push(Edge::with_rel(src_id, rel, dst_id));
        }
        Ok(edges)
    }

    /// Snapshots every completed store file (node partitions and edge
    /// buckets) into the directory `dst`, as a temp-dir + rename: the files
    /// are hard-linked (or copied) into `dst.tmp`, which is renamed to `dst`
    /// only once complete. A crash mid-snapshot leaves at most an abandoned
    /// `.tmp` directory — `dst` either does not exist or is a complete,
    /// immutable snapshot. In-flight `.tmp` siblings inside the store are
    /// skipped (they are torn by definition).
    ///
    /// The caller must only invoke this at a write-back safe point: with no
    /// synchronous writer mid-epoch and, on pipelined runs, after the
    /// write-back ledger has drained (`PartitionBuffer::flush` establishes
    /// both — see `marius_pipeline::writeback_safe_point`). Snapshots taken
    /// there capture exactly the epoch-boundary state of every partition.
    pub fn snapshot_to(&self, dst: impl AsRef<Path>) -> Result<()> {
        let dst = dst.as_ref();
        let staging = tmp_sibling(dst);
        if staging.exists() {
            fs::remove_dir_all(&staging)?;
        }
        fs::create_dir_all(&staging)?;
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if !path.is_file() || is_tmp(&path) {
                continue;
            }
            let name = path.file_name().expect("read_dir yields named files");
            let key = format!("snapshot/{}", name.to_string_lossy());
            let target = staging.join(name);
            // Faulted/retried per file: link/copy staging lives inside the
            // snapshot's own staging dir, so a failing attempt tears nothing
            // the store (or a finished snapshot) can observe.
            self.retrying(&key, || {
                if let Some(f) = &self.faults {
                    f.check_write(&key, |_| {})?;
                }
                atomic_link_or_copy(&path, &target).map_err(StorageError::from)
            })?;
        }
        if dst.exists() {
            fs::remove_dir_all(dst)?;
        }
        fs::rename(&staging, dst)?;
        Ok(())
    }

    /// Restores every file of a [`PartitionStore::snapshot_to`] snapshot into
    /// the store's root, one atomic per-file rename at a time (a concurrent
    /// reader sees each file either pre- or post-restore, never torn).
    /// Abandoned `.tmp` files inside the snapshot are ignored. Files already
    /// in the store but absent from the snapshot are left untouched.
    pub fn restore_from(&self, src: impl AsRef<Path>) -> Result<()> {
        let src = src.as_ref();
        if !src.is_dir() {
            return Err(StorageError::checkpoint(format!(
                "partition snapshot {} does not exist",
                src.display()
            )));
        }
        fs::create_dir_all(&self.root)?;
        for entry in fs::read_dir(src)? {
            let path = entry?.path();
            if !path.is_file() || is_tmp(&path) {
                continue;
            }
            let name = path.file_name().expect("read_dir yields named files");
            let key = format!("restore/{}", name.to_string_lossy());
            let target = self.root.join(name);
            self.retrying(&key, || {
                if let Some(f) = &self.faults {
                    f.check_write(&key, |_| {})?;
                }
                atomic_link_or_copy(&path, &target).map_err(StorageError::from)
            })?;
        }
        Ok(())
    }

    /// Deletes every file in the store (used by tests and example cleanup).
    pub fn clear(&self) -> Result<()> {
        if self.root.exists() {
            for entry in fs::read_dir(&self.root)? {
                let entry = entry?;
                if entry.path().is_file() {
                    fs::remove_file(entry.path())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(label: &str) -> PartitionStore {
        let store = PartitionStore::open_temp(label).unwrap();
        store.clear().unwrap();
        store
    }

    #[test]
    fn partition_roundtrip() {
        let store = temp_store("part-roundtrip");
        let values = vec![1.0f32, -2.5, 3.25, 0.0];
        let state = vec![0.5f32, 0.5, 0.5, 0.5];
        store.write_partition(3, &values, &state).unwrap();
        let (v, s) = store.read_partition(3).unwrap();
        assert_eq!(v, values);
        assert_eq!(s, state);
    }

    #[test]
    fn read_expect_verifies_the_value_block_shape() {
        let store = temp_store("read-expect");
        store
            .write_partition(0, &[1.0f32, 2.0, 3.0, 4.0], &[0.0; 4])
            .unwrap();
        let (v, s) = store.read_partition_expect(0, 2, 2).unwrap();
        assert_eq!(v.len(), 4);
        assert_eq!(s.len(), 4);
        let err = store.read_partition_expect(0, 5, 2).unwrap_err();
        assert!(format!("{err}").contains("expects 5 rows"), "{err}");
        assert!(!err.is_transient());
    }

    #[test]
    fn partition_digest_tracks_exact_bits() {
        let a = partition_digest(&[1.0f32, -2.5, 0.0]);
        let b = partition_digest(&[1.0f32, -2.5, 0.0]);
        assert_eq!(a, b);
        // 0.0 and -0.0 compare equal but differ in bits: the digest sees it.
        assert_ne!(a, partition_digest(&[1.0f32, -2.5, -0.0]));
        assert_ne!(a, partition_digest(&[1.0f32, -2.5]));
    }

    #[test]
    fn missing_partition_is_an_error() {
        let store = temp_store("missing-part");
        let err = store.read_partition(42).unwrap_err();
        assert!(format!("{err}").contains("42"));
    }

    #[test]
    fn bucket_roundtrip_and_missing_bucket_is_empty() {
        let store = temp_store("bucket-roundtrip");
        let edges = vec![Edge::with_rel(7, 2, 9), Edge::new(1, 1)];
        store.write_bucket(0, 1, &edges).unwrap();
        assert_eq!(store.read_bucket(0, 1).unwrap(), edges);
        assert!(store.read_bucket(5, 5).unwrap().is_empty());
    }

    #[test]
    fn io_stats_track_reads_and_writes() {
        let store = temp_store("io-stats");
        store.write_partition(0, &[1.0; 16], &[0.0; 16]).unwrap();
        store.write_bucket(0, 0, &[Edge::new(0, 1)]).unwrap();
        let _ = store.read_partition(0).unwrap();
        let _ = store.read_bucket(0, 0).unwrap();
        let stats = store.io_stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.reads, 2);
        assert!(stats.bytes_written > 0);
        assert!(stats.bytes_read > 0);
        assert!(stats.min_read_bytes > 0);
        store.reset_io_stats();
        assert_eq!(store.io_stats(), IoStats::default());
    }

    #[test]
    fn min_read_tracks_smallest_read() {
        let store = temp_store("min-read");
        store.write_partition(0, &[1.0; 100], &[0.0; 100]).unwrap();
        store.write_partition(1, &[1.0; 2], &[0.0; 2]).unwrap();
        let _ = store.read_partition(0).unwrap();
        let big_min = store.io_stats().min_read_bytes;
        let _ = store.read_partition(1).unwrap();
        assert!(store.io_stats().min_read_bytes < big_min);
    }

    #[test]
    fn overwrite_partition_replaces_content() {
        let store = temp_store("overwrite");
        store.write_partition(0, &[1.0], &[2.0]).unwrap();
        store.write_partition(0, &[9.0, 9.0], &[1.0, 1.0]).unwrap();
        let (v, s) = store.read_partition(0).unwrap();
        assert_eq!(v, vec![9.0, 9.0]);
        assert_eq!(s, vec![1.0, 1.0]);
    }

    #[test]
    fn clear_removes_files() {
        let store = temp_store("clear");
        store.write_partition(0, &[1.0], &[1.0]).unwrap();
        store.clear().unwrap();
        assert!(store.read_partition(0).is_err());
    }

    #[test]
    fn emulated_device_slows_ops_to_the_model() {
        use std::time::{Duration, Instant};
        // 1 MB/s with 1 KiB blocks: a 4 KiB read must take >= ~4 ms.
        let model = IoCostModel {
            bandwidth_bytes_per_sec: 1.0e6,
            iops: 1.0e9,
            block_size: 1024,
        };
        let store = temp_store("throttle").with_emulated_device(model);
        let values = vec![1.0f32; 512];
        let state = vec![0.0f32; 512];
        store.write_partition(0, &values, &state).unwrap();
        let start = Instant::now();
        let _ = store.read_partition(0).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(3));
        // An unthrottled twin on the same files must still read correctly
        // (no timing upper bound: wall-clock asserts flake on loaded CI).
        let fast = PartitionStore::open(store.root()).unwrap();
        let (v, _) = fast.read_partition(0).unwrap();
        assert_eq!(v.len(), 512);
    }

    #[test]
    fn empty_bucket_roundtrip() {
        let store = temp_store("empty-bucket");
        store.write_bucket(2, 3, &[]).unwrap();
        assert!(store.read_bucket(2, 3).unwrap().is_empty());
    }

    #[test]
    fn snapshot_and_restore_roundtrip_partitions_and_buckets() {
        let store = temp_store("snapshot-roundtrip");
        store.write_partition(0, &[1.0, 2.0], &[0.5, 0.5]).unwrap();
        store.write_bucket(0, 0, &[Edge::new(0, 1)]).unwrap();
        let snap = store.root().join("snap");
        store.snapshot_to(&snap).unwrap();
        // Mutate after the snapshot; the snapshot must keep the old bytes
        // (hard links point at the old inode because writes go through
        // rename).
        store.write_partition(0, &[9.0, 9.0], &[1.0, 1.0]).unwrap();
        store.restore_from(&snap).unwrap();
        let (v, s) = store.read_partition(0).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        assert_eq!(s, vec![0.5, 0.5]);
        assert_eq!(store.read_bucket(0, 0).unwrap(), vec![Edge::new(0, 1)]);
    }

    #[test]
    fn snapshot_skips_torn_tmp_files_and_replaces_stale_snapshots() {
        let store = temp_store("snapshot-torn");
        store.write_partition(1, &[3.0], &[0.0]).unwrap();
        // A torn write abandoned by a crash must not enter the snapshot.
        std::fs::write(store.root().join("node_partition_9.bin.tmp"), b"torn").unwrap();
        let snap = store.root().join("snap");
        store.snapshot_to(&snap).unwrap();
        assert!(!snap.join("node_partition_9.bin.tmp").exists());
        assert!(snap.join("node_partition_1.bin").exists());
        // A second snapshot replaces the first atomically.
        store.write_partition(1, &[4.0], &[0.0]).unwrap();
        store.snapshot_to(&snap).unwrap();
        let twin = PartitionStore::open(&snap).unwrap();
        assert_eq!(twin.read_partition(1).unwrap().0, vec![4.0]);
    }

    #[test]
    fn restore_from_missing_snapshot_is_a_checkpoint_error() {
        let store = temp_store("snapshot-missing");
        let err = store.restore_from(store.root().join("nope")).unwrap_err();
        assert!(matches!(err, StorageError::Checkpoint { .. }), "{err}");
    }

    #[test]
    fn open_sweeps_stale_tmp_staging_files() {
        let store = temp_store("tmp-sweep");
        store.write_partition(0, &[1.0], &[0.0]).unwrap();
        // Litter abandoned by interrupted atomic writes.
        fs::write(store.root().join("node_partition_7.bin.tmp"), b"torn").unwrap();
        fs::write(store.root().join("edge_bucket_0_1.bin.tmp"), b"torn").unwrap();
        let reopened = PartitionStore::open(store.root()).unwrap();
        assert!(!store.root().join("node_partition_7.bin.tmp").exists());
        assert!(!store.root().join("edge_bucket_0_1.bin.tmp").exists());
        // Completed files survive the sweep.
        assert_eq!(reopened.read_partition(0).unwrap().0, vec![1.0]);
    }

    #[test]
    fn flaky_store_retries_to_success_and_counts_faults() {
        use crate::fault::IoFaultPlan;
        use std::time::Duration;
        let plan = IoFaultPlan {
            read_fail: 0.3,
            write_fail: 0.3,
            torn_write: 0.5,
            spike: Duration::ZERO,
            ..IoFaultPlan::quiet(42)
        };
        let store = temp_store("flaky-roundtrip").with_fault_plan(plan);
        let values = vec![1.5f32; 32];
        let state = vec![0.25f32; 32];
        for id in 0..8 {
            store.write_partition(id, &values, &state).unwrap();
            let (v, s) = store.read_partition(id).unwrap();
            assert_eq!(v, values);
            assert_eq!(s, state);
            store
                .write_bucket(id, id, &[Edge::new(u64::from(id), u64::from(id) + 1)])
                .unwrap();
            assert_eq!(store.read_bucket(id, id).unwrap().len(), 1);
        }
        let stats = store.io_stats();
        assert!(stats.faults_injected > 0, "plan never fired: {stats:?}");
        assert!(stats.io_retries >= stats.faults_injected);
        // Torn staging litter from injected faults was overwritten by the
        // retries' own staging files and renamed away: nothing remains.
        for entry in fs::read_dir(store.root()).unwrap() {
            assert!(!is_tmp(&entry.unwrap().path()), "torn file left behind");
        }
        // Re-baselining reports only new faults.
        store.reset_io_stats();
        assert_eq!(store.io_stats().faults_injected, 0);
        assert_eq!(store.io_stats().io_retries, 0);
    }

    #[test]
    fn permanent_fault_surfaces_without_retry_exhaustion_noise() {
        use crate::fault::IoFaultPlan;
        let store = temp_store("permanent-fault").with_fault_plan(IoFaultPlan::permanent(1, 0));
        let err = store.write_partition(0, &[1.0], &[0.0]).unwrap_err();
        assert!(!err.is_transient());
        assert!(format!("{err}").contains("permanent"), "{err}");
        // Exactly one fault: permanent errors are not retried.
        assert_eq!(store.io_stats().faults_injected, 1);
        assert_eq!(store.io_stats().io_retries, 0);
    }

    #[test]
    fn outage_longer_than_the_retry_budget_exhausts_it() {
        use crate::fault::IoFaultPlan;
        let store = temp_store("outage-exhaust").with_fault_plan(IoFaultPlan::outage(3, 0, 50));
        let err = store.read_partition(0).unwrap_err();
        assert!(err.is_transient());
        assert!(format!("{err}").contains("budget"), "{err}");
        let budget = RetryPolicy::default_transient().max_retries as u64;
        assert_eq!(store.io_stats().io_retries, budget);
    }
}
