//! Bounded exponential-backoff retry for transient storage faults.
//!
//! The retry layer sits *inside* [`crate::disk::PartitionStore`], underneath
//! the pipeline and the trainer: a retried operation looks exactly like a slow
//! successful operation to every caller, so retries can never perturb RNG
//! streams, batch order, or any other input to the loss trajectory. See
//! [`crate::fault`] for the full fault model and the transient/permanent
//! error taxonomy.
//!
//! A [`RetryPolicy`] describes the budget (`max_retries`) and the backoff
//! curve (`base_delay` doubling per attempt, capped at `max_delay`, scaled by
//! a deterministic jitter factor in `[0.5, 1.0]` derived from `jitter_seed`
//! and the operation key). Everything is a pure function of the policy and
//! the per-operation seed: replaying a schedule replays the exact delays.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::fault::{fnv1a, splitmix64};
use crate::{Result, StorageError};

/// A bounded, deterministic exponential-backoff retry policy.
///
/// Only errors classified as transient by [`StorageError::is_transient`] are
/// retried; permanent errors surface immediately. When the budget is
/// exhausted the last transient error is returned with the budget noted in
/// its reason, so the caller sees a single typed error rather than a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries after the first attempt (a budget of `n`
    /// allows `n + 1` attempts in total).
    pub max_retries: u32,
    /// Delay before the first retry; doubles on each subsequent retry.
    pub base_delay: Duration,
    /// Upper bound applied to the exponential curve before jitter.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter factor.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The default policy for transient device faults: 4 retries, 200 µs
    /// base delay, 10 ms cap. Suited to the injected-fault regimes in
    /// [`crate::fault`]; a real EBS deployment would raise the delays.
    pub fn default_transient() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(10),
            jitter_seed: 0x1005_eed5,
        }
    }

    /// A policy that never retries (transient errors surface immediately).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Derives the per-operation jitter seed for a stable operation key
    /// (for example `"partition/3"`).
    pub fn op_seed(&self, key: &str) -> u64 {
        self.jitter_seed ^ fnv1a(key.as_bytes())
    }

    /// The backoff delay before retry number `attempt` (1-based) of the
    /// operation identified by `op_seed`. Deterministic: the same policy,
    /// seed, and attempt always produce the same delay.
    pub fn delay(&self, op_seed: u64, attempt: u32) -> Duration {
        if attempt == 0 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_delay);
        // Jitter factor in [0.5, 1.0]: enough spread to de-synchronize
        // concurrent retries without ever shrinking the delay to zero.
        let unit = (splitmix64(op_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            >> 11) as f64
            / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + 0.5 * unit)
    }

    /// An upper bound on the total time spent sleeping across a full retry
    /// budget for one operation (jitter factors are at most 1).
    pub fn max_total_delay(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 1..=self.max_retries {
            let exp = self
                .base_delay
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(self.max_delay);
            total = total.saturating_add(exp);
        }
        total
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::default_transient()
    }
}

/// Runs `op`, retrying transient failures under `policy`.
///
/// Each retry sleeps for the deterministic backoff delay and increments
/// `retries` (the store's `io_retries` counter). Permanent errors and
/// budget exhaustion return immediately; the exhausted error keeps its
/// transient classification but notes the spent budget in its message.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    op_seed: u64,
    retries: &AtomicU64,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                attempt += 1;
                retries.fetch_add(1, Ordering::Relaxed);
                let delay = policy.delay(op_seed, attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            Err(e) if e.is_transient() && policy.max_retries > 0 => {
                return Err(StorageError::Transient {
                    reason: format!("{e} (retry budget of {} exhausted)", policy.max_retries),
                });
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_errors_are_retried_until_success() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 1,
        };
        let retries = AtomicU64::new(0);
        let mut failures_left = 2;
        let out = with_retry(&policy, 7, &retries, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(StorageError::transient("flaky"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let policy = RetryPolicy::default_transient();
        let retries = AtomicU64::new(0);
        let out: Result<()> = with_retry(&policy, 7, &retries, || {
            Err(StorageError::InvalidPlan {
                reason: "bad".into(),
            })
        });
        assert!(matches!(out, Err(StorageError::InvalidPlan { .. })));
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn exhausted_budget_reports_the_budget() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 1,
        };
        let retries = AtomicU64::new(0);
        let out: Result<()> = with_retry(&policy, 9, &retries, || {
            Err(StorageError::transient("still down"))
        });
        match out {
            Err(StorageError::Transient { reason }) => {
                assert!(reason.contains("budget of 2 exhausted"), "{reason}");
            }
            other => panic!("expected transient exhaustion, got {other:?}"),
        }
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn delays_are_deterministic_and_capped() {
        let policy = RetryPolicy::default_transient();
        for attempt in 1..=policy.max_retries {
            let d = policy.delay(123, attempt);
            assert_eq!(d, policy.delay(123, attempt));
            assert!(d <= policy.max_delay);
            assert!(!d.is_zero());
        }
        assert_eq!(policy.delay(123, 0), Duration::ZERO);
    }
}
