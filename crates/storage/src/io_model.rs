//! Block-storage cost model (the paper's EBS volume: 1 GB/s, 10 000 IOPS).
//!
//! Out-of-core experiments in this reproduction run against the local filesystem,
//! which is much faster than the cloud volume the paper used. To regenerate the
//! paper's epoch-time *shape*, benchmark harnesses convert the measured IO volume
//! (from [`crate::disk::IoStats`]) into an estimated transfer time under this
//! model, and combine it with compute time assuming prefetching overlaps the two
//! (the paper's pipelined execution).

use crate::disk::IoStats;
use std::time::Duration;

/// Bandwidth / IOPS / block-size model of a block storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCostModel {
    /// Sustained sequential bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Maximum IO operations per second.
    pub iops: f64,
    /// Device block size in bytes; reads smaller than this still pay for a full
    /// block (§6's argument for bounding the number of physical partitions).
    pub block_size: u64,
}

impl IoCostModel {
    /// The EBS gp2/gp3 volume used in the paper's evaluation (§7.1): 1 GB/s of
    /// bandwidth and 10 000 IOPS, with a 128 KiB effective block size.
    pub fn ebs_gp3() -> Self {
        IoCostModel {
            bandwidth_bytes_per_sec: 1.0e9,
            iops: 10_000.0,
            block_size: 128 * 1024,
        }
    }

    /// A local NVMe SSD (for sensitivity analysis): 3 GB/s, 400k IOPS, 4 KiB blocks.
    pub fn local_nvme() -> Self {
        IoCostModel {
            bandwidth_bytes_per_sec: 3.0e9,
            iops: 400_000.0,
            block_size: 4 * 1024,
        }
    }

    /// Estimated time to perform `ops` operations moving `bytes` in total.
    ///
    /// The device is limited by whichever is slower: moving the bytes at the
    /// sequential bandwidth (rounding every operation up to a whole block) or
    /// issuing the operations at the IOPS limit.
    pub fn transfer_time(&self, bytes: u64, ops: u64) -> Duration {
        let effective_bytes = bytes.max(ops * self.block_size);
        let bandwidth_time = effective_bytes as f64 / self.bandwidth_bytes_per_sec;
        let iops_time = ops as f64 / self.iops;
        Duration::from_secs_f64(bandwidth_time.max(iops_time))
    }

    /// Estimated time for the IO described by a stats snapshot (reads plus writes).
    pub fn stats_time(&self, stats: &IoStats) -> Duration {
        self.transfer_time(
            stats.bytes_read + stats.bytes_written,
            stats.reads + stats.writes,
        )
    }

    /// Combines IO time and compute time assuming perfect pipelining (prefetching
    /// overlaps IO with compute, so the epoch takes the maximum of the two), as
    /// MariusGNN's pipelined execution aims for.
    pub fn pipelined_epoch_time(&self, io: Duration, compute: Duration) -> Duration {
        io.max(compute)
    }

    /// Combines IO and compute assuming no overlap (the behaviour the paper
    /// attributes to greedy policies whose unbalanced workloads leave no compute
    /// to hide IO behind).
    pub fn serial_epoch_time(&self, io: Duration, compute: Duration) -> Duration {
        io + compute
    }
}

impl Default for IoCostModel {
    fn default() -> Self {
        IoCostModel::ebs_gp3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_bound_transfer() {
        let m = IoCostModel::ebs_gp3();
        // 10 GB in 10 ops: bandwidth-bound at ~10 s.
        let t = m.transfer_time(10_000_000_000, 10);
        assert!((t.as_secs_f64() - 10.0).abs() < 0.5);
    }

    #[test]
    fn iops_bound_transfer() {
        let m = IoCostModel::ebs_gp3();
        // 100k tiny reads: IOPS-bound at ~10 s even though bytes are negligible.
        let t = m.transfer_time(100_000, 100_000);
        assert!(t.as_secs_f64() >= 9.9);
    }

    #[test]
    fn small_reads_pay_full_blocks() {
        let m = IoCostModel::ebs_gp3();
        let few_big = m.transfer_time(1_000_000, 8);
        let many_small = m.transfer_time(1_000_000, 5_000);
        assert!(many_small > few_big);
    }

    #[test]
    fn nvme_faster_than_ebs() {
        let bytes = 5_000_000_000u64;
        assert!(
            IoCostModel::local_nvme().transfer_time(bytes, 100)
                < IoCostModel::ebs_gp3().transfer_time(bytes, 100)
        );
    }

    #[test]
    fn pipelined_vs_serial() {
        let m = IoCostModel::default();
        let io = Duration::from_secs(4);
        let compute = Duration::from_secs(6);
        assert_eq!(m.pipelined_epoch_time(io, compute), Duration::from_secs(6));
        assert_eq!(m.serial_epoch_time(io, compute), Duration::from_secs(10));
    }

    #[test]
    fn stats_time_combines_reads_and_writes() {
        let m = IoCostModel::ebs_gp3();
        let stats = IoStats {
            bytes_read: 500_000_000,
            bytes_written: 500_000_000,
            reads: 10,
            writes: 10,
            min_read_bytes: 1,
            ..IoStats::default()
        };
        let t = m.stats_time(&stats);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.1);
    }
}
