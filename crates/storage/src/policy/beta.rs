//! The BETA policy (Buffer-aware Edge Traversal Algorithm) from Marius.
//!
//! BETA greedily minimises IO: every new buffer state immediately trains on all
//! edge buckets that became available when its new partition arrived. This is the
//! state-of-the-art baseline the paper compares COMET against (Table 8). The
//! greedy assignment is exactly what produces correlated training examples: every
//! `Xᵢ` (after the first) consists solely of buckets touching the newly loaded
//! partition (Figure 4), which is why the learned GNNs lose accuracy.

use super::{greedy_pair_coverage, EpochPlan, ReplacementPolicy};
use crate::Result;
use marius_graph::PartitionId;
use rand::Rng;
use std::collections::HashSet;

/// The greedy BETA replacement policy.
#[derive(Debug, Clone)]
pub struct BetaPolicy {
    /// Buffer capacity in physical partitions.
    pub buffer_capacity: usize,
}

impl BetaPolicy {
    /// Creates a BETA policy for a buffer of `buffer_capacity` physical partitions.
    pub fn new(buffer_capacity: usize) -> Self {
        BetaPolicy { buffer_capacity }
    }
}

impl ReplacementPolicy for BetaPolicy {
    fn plan<R: Rng + ?Sized>(&self, num_partitions: u32, rng: &mut R) -> Result<EpochPlan> {
        let sets = greedy_pair_coverage(num_partitions, self.buffer_capacity, rng)?;
        // Greedy immediate assignment: each bucket goes to the FIRST set in which
        // both of its partitions are resident.
        let mut assigned: HashSet<(PartitionId, PartitionId)> = HashSet::new();
        let mut bucket_assignment = Vec::with_capacity(sets.len());
        for set in &sets {
            let mut buckets = Vec::new();
            for &i in set {
                for &j in set {
                    if assigned.insert((i, j)) {
                        buckets.push((i, j));
                    }
                }
            }
            bucket_assignment.push(buckets);
        }
        Ok(EpochPlan {
            partition_sets: sets,
            bucket_assignment,
        })
    }

    fn name(&self) -> &'static str {
        "beta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_plan_is_valid_for_various_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for (p, c) in [(4u32, 2usize), (8, 4), (12, 3), (16, 4)] {
            let plan = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
            plan.validate(p, c).unwrap();
        }
    }

    #[test]
    fn beta_first_set_gets_the_bulk_of_buckets() {
        // The greedy assignment processes all c² buckets of the initial buffer at
        // once, then only the new-partition buckets per swap — the unbalanced
        // workload Figure 4 illustrates.
        let mut rng = StdRng::seed_from_u64(2);
        let (p, c) = (8u32, 4usize);
        let plan = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
        let per_step = plan.buckets_per_step();
        assert_eq!(per_step[0], c * c);
        // Later steps are much smaller (at most 2c - 1 buckets each).
        for &b in &per_step[1..] {
            assert!(b < 2 * c || b == 0, "step had {b} buckets");
        }
    }

    #[test]
    fn beta_later_steps_are_correlated_with_the_new_partition() {
        let mut rng = StdRng::seed_from_u64(3);
        let (p, c) = (8u32, 4usize);
        let plan = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
        for (step, buckets) in plan.bucket_assignment.iter().enumerate().skip(1) {
            if buckets.is_empty() {
                continue;
            }
            // The newly arrived partition is the one not present in the previous set.
            let prev: HashSet<_> = plan.partition_sets[step - 1].iter().copied().collect();
            let new: Vec<_> = plan.partition_sets[step]
                .iter()
                .copied()
                .filter(|x| !prev.contains(x))
                .collect();
            assert_eq!(new.len(), 1);
            let fresh = new[0];
            // Every bucket in this step touches the fresh partition (the
            // correlation the paper describes).
            for &(i, j) in buckets {
                assert!(i == fresh || j == fresh);
            }
        }
    }

    #[test]
    fn beta_name() {
        assert_eq!(BetaPolicy::new(4).name(), "beta");
    }

    #[test]
    fn beta_single_set_when_graph_fits() {
        let mut rng = StdRng::seed_from_u64(4);
        let plan = BetaPolicy::new(8).plan(4, &mut rng).unwrap();
        assert_eq!(plan.num_sets(), 1);
        assert_eq!(plan.total_buckets(), 16);
        plan.validate(4, 8).unwrap();
    }
}
