//! Partition replacement and mini-batch assignment policies (paper §5).
//!
//! A policy produces an [`EpochPlan`]: the sequence `S = {S₁, S₂, ...}` of
//! partition sets to hold in the buffer during one epoch, and the sequence
//! `X = {X₁, X₂, ...}` assigning every edge bucket (training examples) to exactly
//! one of those sets. The plan must satisfy two invariants that every policy test
//! checks through [`EpochPlan::validate`]:
//!
//! 1. every bucket `(i, j)` with `i, j < p` is assigned to exactly one `Xᵢ`, and
//! 2. the set `Sᵢ` it is assigned to contains both of its partitions.
//!
//! The difference between policies is how much **correlation** the resulting
//! example order exhibits (quantified by [`crate::tuning::edge_permutation_bias`])
//! and how much IO the sequence of sets costs.

mod beta;
mod comet;
mod simple;

pub use beta::BetaPolicy;
pub use comet::CometPolicy;
pub use simple::{InMemoryPolicy, NodeCachePolicy};

use crate::{Result, StorageError};
use marius_graph::PartitionId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// The per-epoch schedule produced by a replacement policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPlan {
    /// `Sᵢ`: physical partitions resident in the buffer for step `i`.
    pub partition_sets: Vec<Vec<PartitionId>>,
    /// `Xᵢ`: edge buckets whose training examples are processed during step `i`.
    pub bucket_assignment: Vec<Vec<(PartitionId, PartitionId)>>,
}

impl EpochPlan {
    /// Number of partition sets (the "number of subgraphs" series of Figure 6b).
    pub fn num_sets(&self) -> usize {
        self.partition_sets.len()
    }

    /// Total number of partition loads from disk across the epoch: the initial
    /// fill plus every partition that enters the buffer on a swap.
    pub fn partition_loads(&self) -> usize {
        let mut loads = 0usize;
        let mut previous: HashSet<PartitionId> = HashSet::new();
        for set in &self.partition_sets {
            loads += set.iter().filter(|p| !previous.contains(p)).count();
            previous = set.iter().copied().collect();
        }
        loads
    }

    /// Total buckets assigned across all steps.
    pub fn total_buckets(&self) -> usize {
        self.bucket_assignment.iter().map(|x| x.len()).sum()
    }

    /// Number of training-example buckets per step (workload balance diagnostic;
    /// COMET's deferred assignment makes these roughly equal, §5.1).
    pub fn buckets_per_step(&self) -> Vec<usize> {
        self.bucket_assignment.iter().map(|x| x.len()).collect()
    }

    /// Checks the plan's invariants for a graph with `num_partitions` physical
    /// partitions and a buffer of `capacity` physical partitions.
    pub fn validate(
        &self,
        num_partitions: u32,
        capacity: usize,
    ) -> std::result::Result<(), String> {
        if self.partition_sets.len() != self.bucket_assignment.len() {
            return Err("partition_sets and bucket_assignment lengths differ".into());
        }
        let mut assigned: HashSet<(PartitionId, PartitionId)> = HashSet::new();
        for (set, buckets) in self.partition_sets.iter().zip(&self.bucket_assignment) {
            if set.len() > capacity {
                return Err(format!("set {set:?} exceeds buffer capacity {capacity}"));
            }
            let resident: HashSet<PartitionId> = set.iter().copied().collect();
            if resident.len() != set.len() {
                return Err(format!("set {set:?} contains duplicate partitions"));
            }
            for &(i, j) in buckets {
                if !resident.contains(&i) || !resident.contains(&j) {
                    return Err(format!(
                        "bucket ({i},{j}) assigned to a set not containing both partitions"
                    ));
                }
                if !assigned.insert((i, j)) {
                    return Err(format!("bucket ({i},{j}) assigned more than once"));
                }
            }
        }
        for i in 0..num_partitions {
            for j in 0..num_partitions {
                if !assigned.contains(&(i, j)) {
                    return Err(format!("bucket ({i},{j}) never assigned"));
                }
            }
        }
        Ok(())
    }
}

/// A replacement policy that schedules one training epoch.
pub trait ReplacementPolicy {
    /// Produces the epoch plan for a graph partitioned into `num_partitions`
    /// physical partitions.
    fn plan<R: Rng + ?Sized>(&self, num_partitions: u32, rng: &mut R) -> Result<EpochPlan>;

    /// Short policy name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Greedy single-swap sequence of buffer states covering all ordered pairs of
/// `0..n` items with a buffer of `capacity` items (shared by BETA at the physical
/// level and COMET at the logical level).
///
/// Returns the sequence of buffer states; the first state is a random selection
/// of `capacity` items, and each subsequent state swaps exactly one item chosen
/// to maximise the number of not-yet-covered pairs.
pub(crate) fn greedy_pair_coverage<R: Rng + ?Sized>(
    n: u32,
    capacity: usize,
    rng: &mut R,
) -> Result<Vec<Vec<u32>>> {
    if capacity < 2 && n > 1 {
        return Err(StorageError::InvalidPlan {
            reason: format!("buffer capacity {capacity} cannot cover pairs of {n} partitions"),
        });
    }
    if n == 0 {
        return Ok(vec![]);
    }
    let mut items: Vec<u32> = (0..n).collect();
    items.shuffle(rng);
    if capacity as u32 >= n {
        return Ok(vec![items]);
    }

    let mut covered: HashSet<(u32, u32)> = HashSet::new();
    let mark = |set: &[u32], covered: &mut HashSet<(u32, u32)>| {
        for &a in set {
            for &b in set {
                covered.insert((a, b));
            }
        }
    };

    let mut current: Vec<u32> = items[..capacity].to_vec();
    let mut outside: Vec<u32> = items[capacity..].to_vec();
    mark(&current, &mut covered);
    let mut sets = vec![current.clone()];

    let total_pairs = (n as usize) * (n as usize);
    while covered.len() < total_pairs {
        // Pick the (incoming, evicted) swap that uncovers the most new pairs.
        let mut best: Option<(usize, usize, usize)> = None; // (new_pairs, outside_idx, evict_idx)
        for (oi, &cand) in outside.iter().enumerate() {
            for evict_idx in 0..current.len() {
                let mut new_pairs = 0usize;
                for (ci, &q) in current.iter().enumerate() {
                    if ci == evict_idx {
                        continue;
                    }
                    if !covered.contains(&(cand, q)) {
                        new_pairs += 1;
                    }
                    if !covered.contains(&(q, cand)) {
                        new_pairs += 1;
                    }
                }
                if !covered.contains(&(cand, cand)) {
                    new_pairs += 1;
                }
                match best {
                    None => best = Some((new_pairs, oi, evict_idx)),
                    Some((b, _, _)) if new_pairs > b => best = Some((new_pairs, oi, evict_idx)),
                    _ => {}
                }
            }
        }
        let (gain, oi, evict_idx) = best.expect("outside is non-empty while pairs remain");
        if gain == 0 {
            // Every remaining pair is between two outside items; bring one in and
            // continue (this still terminates because the swapped-in item then
            // pairs with future arrivals).
            let cand = outside.swap_remove(oi);
            let evicted = std::mem::replace(&mut current[evict_idx], cand);
            outside.push(evicted);
            mark(&current, &mut covered);
            sets.push(current.clone());
            continue;
        }
        let cand = outside.swap_remove(oi);
        let evicted = std::mem::replace(&mut current[evict_idx], cand);
        outside.push(evicted);
        mark(&current, &mut covered);
        sets.push(current.clone());
    }
    Ok(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_pairs_covered(sets: &[Vec<u32>], n: u32) -> bool {
        let mut covered = HashSet::new();
        for s in sets {
            for &a in s {
                for &b in s {
                    covered.insert((a, b));
                }
            }
        }
        (0..n).all(|i| (0..n).all(|j| covered.contains(&(i, j))))
    }

    #[test]
    fn greedy_coverage_covers_all_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, c) in [(4u32, 2usize), (8, 2), (8, 4), (12, 3), (16, 4)] {
            let sets = greedy_pair_coverage(n, c, &mut rng).unwrap();
            assert!(all_pairs_covered(&sets, n), "n={n} c={c}");
            for s in &sets {
                assert_eq!(s.len(), c.min(n as usize));
            }
        }
    }

    #[test]
    fn greedy_coverage_single_set_when_everything_fits() {
        let mut rng = StdRng::seed_from_u64(2);
        let sets = greedy_pair_coverage(4, 8, &mut rng).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 4);
    }

    #[test]
    fn greedy_coverage_swaps_one_partition_per_step() {
        let mut rng = StdRng::seed_from_u64(3);
        let sets = greedy_pair_coverage(10, 4, &mut rng).unwrap();
        for w in sets.windows(2) {
            let a: HashSet<_> = w[0].iter().collect();
            let b: HashSet<_> = w[1].iter().collect();
            let entered = b.difference(&a).count();
            assert_eq!(entered, 1, "each step must bring in exactly one partition");
        }
    }

    #[test]
    fn greedy_coverage_io_near_lower_bound() {
        // Marius's analysis: total loads for covering all pairs with a buffer of
        // c is Θ(p²/c); check we are within a small constant of p²/(2c) + c.
        let mut rng = StdRng::seed_from_u64(4);
        let (p, c) = (16u32, 4usize);
        let sets = greedy_pair_coverage(p, c, &mut rng).unwrap();
        let loads = c + sets.len() - 1;
        let lower_bound = (p as usize * p as usize) / (2 * c);
        assert!(
            loads <= 2 * lower_bound + c,
            "loads {loads} should be close to the lower bound {lower_bound}"
        );
    }

    #[test]
    fn greedy_coverage_rejects_capacity_one() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(greedy_pair_coverage(4, 1, &mut rng).is_err());
    }

    #[test]
    fn greedy_coverage_empty_and_single() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(greedy_pair_coverage(0, 4, &mut rng).unwrap().is_empty());
        let one = greedy_pair_coverage(1, 1, &mut rng).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn epoch_plan_validation_catches_problems() {
        // Missing bucket.
        let plan = EpochPlan {
            partition_sets: vec![vec![0, 1]],
            bucket_assignment: vec![vec![(0, 0), (0, 1), (1, 0)]],
        };
        assert!(plan.validate(2, 2).is_err());
        // Complete plan passes.
        let plan = EpochPlan {
            partition_sets: vec![vec![0, 1]],
            bucket_assignment: vec![vec![(0, 0), (0, 1), (1, 0), (1, 1)]],
        };
        assert!(plan.validate(2, 2).is_ok());
        // Bucket assigned to a set missing one endpoint.
        let plan = EpochPlan {
            partition_sets: vec![vec![0, 1], vec![1, 2]],
            bucket_assignment: vec![
                vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)],
                vec![(1, 2), (2, 1), (0, 2), (2, 0)],
            ],
        };
        assert!(plan.validate(3, 2).is_err());
        // Duplicate assignment.
        let plan = EpochPlan {
            partition_sets: vec![vec![0, 1], vec![0, 1]],
            bucket_assignment: vec![vec![(0, 0), (0, 1), (1, 0), (1, 1)], vec![(0, 0)]],
        };
        assert!(plan.validate(2, 2).is_err());
        // Capacity violation.
        let plan = EpochPlan {
            partition_sets: vec![vec![0, 1, 2]],
            bucket_assignment: vec![vec![]],
        };
        assert!(plan.validate(3, 2).is_err());
    }

    #[test]
    fn epoch_plan_partition_loads_counts_swaps() {
        let plan = EpochPlan {
            partition_sets: vec![vec![0, 1, 2], vec![0, 1, 3], vec![1, 3, 4]],
            bucket_assignment: vec![vec![], vec![], vec![]],
        };
        // 3 initial + 1 (partition 3) + 1 (partition 4) = 5.
        assert_eq!(plan.partition_loads(), 5);
        assert_eq!(plan.num_sets(), 3);
    }
}
