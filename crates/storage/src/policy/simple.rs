//! Trivial policies: full in-memory training and the node-classification
//! training-node caching policy (§5.2).

use super::{EpochPlan, ReplacementPolicy};
use crate::{Result, StorageError};
use marius_graph::PartitionId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Keeps every partition in memory for the whole epoch: a single `S₁` containing
/// the entire graph and a single `X₁` with every bucket (the paper's
/// M-GNN_Mem configuration).
#[derive(Debug, Clone, Default)]
pub struct InMemoryPolicy;

impl ReplacementPolicy for InMemoryPolicy {
    fn plan<R: Rng + ?Sized>(&self, num_partitions: u32, _rng: &mut R) -> Result<EpochPlan> {
        let set: Vec<PartitionId> = (0..num_partitions).collect();
        let mut buckets = Vec::with_capacity((num_partitions as usize).pow(2));
        for i in 0..num_partitions {
            for j in 0..num_partitions {
                buckets.push((i, j));
            }
        }
        Ok(EpochPlan {
            partition_sets: vec![set],
            bucket_assignment: vec![buckets],
        })
    }

    fn name(&self) -> &'static str {
        "in-memory"
    }
}

/// The node-classification disk policy (§5.2): the `k` partitions holding all
/// training nodes stay cached in CPU memory for the entire epoch, the remaining
/// buffer slots are filled with randomly chosen other partitions, and no swaps
/// happen during the epoch (IO only occurs between epochs when the random
/// partitions are re-drawn).
#[derive(Debug, Clone)]
pub struct NodeCachePolicy {
    /// Buffer capacity in physical partitions.
    pub buffer_capacity: usize,
    /// Number of leading partitions that contain training nodes (the `k` of
    /// §5.2, produced by `Partitioner::training_nodes_first`).
    pub num_train_partitions: u32,
}

impl NodeCachePolicy {
    /// Creates the caching policy.
    pub fn new(buffer_capacity: usize, num_train_partitions: u32) -> Self {
        NodeCachePolicy {
            buffer_capacity,
            num_train_partitions,
        }
    }
}

impl ReplacementPolicy for NodeCachePolicy {
    fn plan<R: Rng + ?Sized>(&self, num_partitions: u32, rng: &mut R) -> Result<EpochPlan> {
        if self.num_train_partitions as usize > self.buffer_capacity {
            return Err(StorageError::InvalidPlan {
                reason: format!(
                    "training nodes span {} partitions but the buffer holds only {}; \
                     fall back to COMET-style replacement",
                    self.num_train_partitions, self.buffer_capacity
                ),
            });
        }
        // Training partitions always resident; fill the rest randomly.
        let mut set: Vec<PartitionId> =
            (0..self.num_train_partitions.min(num_partitions)).collect();
        let mut others: Vec<PartitionId> = (self.num_train_partitions..num_partitions).collect();
        others.shuffle(rng);
        let extra = self
            .buffer_capacity
            .saturating_sub(set.len())
            .min(others.len());
        set.extend_from_slice(&others[..extra]);

        // The single X contains every bucket between resident partitions; buckets
        // involving non-resident partitions contribute no training nodes (they
        // only matter for neighbourhood sampling, which is truncated to memory).
        let mut buckets = Vec::new();
        for &i in &set {
            for &j in &set {
                buckets.push((i, j));
            }
        }
        Ok(EpochPlan {
            partition_sets: vec![set],
            bucket_assignment: vec![buckets],
        })
    }

    fn name(&self) -> &'static str {
        "node-cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn in_memory_policy_single_complete_set() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = InMemoryPolicy.plan(5, &mut rng).unwrap();
        assert_eq!(plan.num_sets(), 1);
        assert_eq!(plan.total_buckets(), 25);
        plan.validate(5, 5).unwrap();
        assert_eq!(InMemoryPolicy.name(), "in-memory");
    }

    #[test]
    fn node_cache_keeps_training_partitions_resident_with_zero_swaps() {
        let mut rng = StdRng::seed_from_u64(2);
        let policy = NodeCachePolicy::new(4, 2);
        let plan = policy.plan(10, &mut rng).unwrap();
        assert_eq!(plan.num_sets(), 1);
        let set = &plan.partition_sets[0];
        assert_eq!(set.len(), 4);
        assert!(set.contains(&0) && set.contains(&1));
        // Zero swaps during the epoch: only the initial load.
        assert_eq!(plan.partition_loads(), 4);
        assert_eq!(policy.name(), "node-cache");
    }

    #[test]
    fn node_cache_random_partitions_differ_between_epochs() {
        let policy = NodeCachePolicy::new(4, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let a = policy.plan(20, &mut rng).unwrap();
        let b = policy.plan(20, &mut rng).unwrap();
        assert_ne!(a.partition_sets, b.partition_sets);
        // Training partition 0 is in both.
        assert!(a.partition_sets[0].contains(&0));
        assert!(b.partition_sets[0].contains(&0));
    }

    #[test]
    fn node_cache_rejects_training_set_larger_than_buffer() {
        let mut rng = StdRng::seed_from_u64(4);
        let policy = NodeCachePolicy::new(2, 5);
        assert!(policy.plan(10, &mut rng).is_err());
    }

    #[test]
    fn node_cache_with_buffer_covering_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let policy = NodeCachePolicy::new(10, 3);
        let plan = policy.plan(6, &mut rng).unwrap();
        assert_eq!(plan.partition_sets[0].len(), 6);
        plan.validate(6, 10).unwrap();
    }
}
