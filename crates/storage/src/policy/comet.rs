//! The COMET policy (COrrelation Minimizing Edge Traversal), the paper's §5.1
//! contribution.
//!
//! COMET combines two mechanisms:
//!
//! 1. **Two-level partitioning** — physical partitions on disk are randomly
//!    grouped into larger *logical* partitions at the start of every epoch, and
//!    the greedy one-swap coverage sequence is generated over logical partitions.
//!    Small physical partitions keep fewer nodes pinned together for the whole
//!    epoch while large logical partitions keep the turnover per swap high.
//! 2. **Deferred random assignment** — every edge bucket is assigned to a set
//!    chosen uniformly at random among all sets containing both of its
//!    partitions, instead of the first such set. This shuffles the example order
//!    and balances the per-step workload so prefetching can overlap IO with
//!    compute throughout the epoch.

use super::{greedy_pair_coverage, EpochPlan, ReplacementPolicy};
use crate::{Result, StorageError};
use marius_graph::PartitionId;
use rand::seq::SliceRandom;
use rand::Rng;

/// The COMET replacement policy.
#[derive(Debug, Clone)]
pub struct CometPolicy {
    /// Buffer capacity in physical partitions.
    pub buffer_capacity: usize,
    /// Number of logical partitions `l` (must divide the physical partition count
    /// and keep at least two logical partitions in the buffer).
    pub num_logical: u32,
}

impl CometPolicy {
    /// Creates a COMET policy with an explicit number of logical partitions.
    pub fn new(buffer_capacity: usize, num_logical: u32) -> Self {
        CometPolicy {
            buffer_capacity,
            num_logical,
        }
    }

    /// Creates a COMET policy using the paper's auto-tuning rule `l = 2p / c`
    /// (so exactly two logical partitions fit in the buffer). For buffer sizes
    /// that do not divide evenly, the logical partition size is rounded down so
    /// that two logical partitions always fit.
    pub fn auto(num_partitions: u32, buffer_capacity: usize) -> Self {
        // Each logical partition holds at most floor(c / 2) physical partitions,
        // guaranteeing the buffer can always hold two of them.
        let per_logical = (buffer_capacity / 2).max(1);
        let l = (num_partitions as usize).div_ceil(per_logical).max(2) as u32;
        CometPolicy {
            buffer_capacity,
            num_logical: l.min(num_partitions.max(2)),
        }
    }
}

impl ReplacementPolicy for CometPolicy {
    fn plan<R: Rng + ?Sized>(&self, num_partitions: u32, rng: &mut R) -> Result<EpochPlan> {
        let p = num_partitions;
        if p == 0 {
            return Ok(EpochPlan {
                partition_sets: vec![],
                bucket_assignment: vec![],
            });
        }
        let l = self.num_logical.clamp(1, p);
        // Physical partitions per logical partition (the last logical partition
        // absorbs any remainder).
        let per_logical = (p as usize).div_ceil(l as usize);
        // Logical buffer capacity: how many whole logical partitions fit.
        let logical_capacity = (self.buffer_capacity / per_logical).max(1);
        if logical_capacity < 2 && l > 1 {
            return Err(StorageError::InvalidPlan {
                reason: format!(
                    "buffer of {} physical partitions holds fewer than two logical partitions of size {per_logical}",
                    self.buffer_capacity
                ),
            });
        }

        // Randomly group physical partitions into logical partitions (no data
        // movement — just an in-memory mapping, §3).
        let mut physical: Vec<PartitionId> = (0..p).collect();
        physical.shuffle(rng);
        let groups: Vec<Vec<PartitionId>> =
            physical.chunks(per_logical).map(|c| c.to_vec()).collect();
        let effective_l = groups.len() as u32;

        // Greedy one-swap coverage over the logical partitions.
        let logical_sets = greedy_pair_coverage(effective_l, logical_capacity, rng)?;

        // Expand logical sets to physical sets.
        let partition_sets: Vec<Vec<PartitionId>> = logical_sets
            .iter()
            .map(|ls| {
                ls.iter()
                    .flat_map(|&g| groups[g as usize].iter().copied())
                    .collect()
            })
            .collect();

        // Deferred random assignment: each bucket picks uniformly among the sets
        // containing both of its partitions.
        let mut set_of_partition: Vec<Vec<usize>> = vec![Vec::new(); p as usize];
        for (si, set) in partition_sets.iter().enumerate() {
            for &part in set {
                set_of_partition[part as usize].push(si);
            }
        }
        let mut bucket_assignment: Vec<Vec<(PartitionId, PartitionId)>> =
            vec![Vec::new(); partition_sets.len()];
        for i in 0..p {
            for j in 0..p {
                let sets_i = &set_of_partition[i as usize];
                let sets_j = &set_of_partition[j as usize];
                // Intersect the (small) sorted lists of set indices.
                let mut candidates: Vec<usize> = Vec::new();
                let mut a = 0usize;
                let mut b = 0usize;
                while a < sets_i.len() && b < sets_j.len() {
                    match sets_i[a].cmp(&sets_j[b]) {
                        std::cmp::Ordering::Equal => {
                            candidates.push(sets_i[a]);
                            a += 1;
                            b += 1;
                        }
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                    }
                }
                if candidates.is_empty() {
                    return Err(StorageError::InvalidPlan {
                        reason: format!("bucket ({i},{j}) never co-resident in any set"),
                    });
                }
                let chosen = candidates[rng.gen_range(0..candidates.len())];
                bucket_assignment[chosen].push((i, j));
            }
        }

        Ok(EpochPlan {
            partition_sets,
            bucket_assignment,
        })
    }

    fn name(&self) -> &'static str {
        "comet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn comet_plan_is_valid_for_various_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for (p, c, l) in [(8u32, 4usize, 4u32), (16, 4, 8), (12, 6, 4), (16, 8, 4)] {
            let plan = CometPolicy::new(c, l).plan(p, &mut rng).unwrap();
            plan.validate(p, c).unwrap();
        }
    }

    #[test]
    fn comet_auto_uses_two_logical_partitions_in_buffer() {
        let policy = CometPolicy::auto(16, 4);
        // l = 2p/c = 8, so each logical partition has two physical partitions and
        // exactly two fit in the buffer of four.
        assert_eq!(policy.num_logical, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let plan = policy.plan(16, &mut rng).unwrap();
        plan.validate(16, 4).unwrap();
    }

    #[test]
    fn comet_workload_is_more_balanced_than_beta() {
        use crate::policy::BetaPolicy;
        use crate::policy::ReplacementPolicy as _;
        let mut rng = StdRng::seed_from_u64(3);
        let (p, c) = (16u32, 4usize);
        let comet = CometPolicy::auto(p, c).plan(p, &mut rng).unwrap();
        let beta = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
        let imbalance = |plan: &EpochPlan| {
            let per = plan.buckets_per_step();
            let max = *per.iter().max().unwrap() as f64;
            let mean = per.iter().sum::<usize>() as f64 / per.len() as f64;
            max / mean
        };
        assert!(
            imbalance(&comet) < imbalance(&beta),
            "COMET should balance buckets across steps better than BETA"
        );
    }

    #[test]
    fn comet_rejects_buffer_smaller_than_two_logical_partitions() {
        let mut rng = StdRng::seed_from_u64(4);
        // 16 physical in 4 logical partitions of 4; a buffer of 4 fits only one.
        let res = CometPolicy::new(4, 4).plan(16, &mut rng);
        assert!(res.is_err());
    }

    #[test]
    fn comet_with_one_logical_partition_degenerates_to_in_memory() {
        let mut rng = StdRng::seed_from_u64(5);
        let plan = CometPolicy::new(8, 1).plan(8, &mut rng).unwrap();
        assert_eq!(plan.num_sets(), 1);
        plan.validate(8, 8).unwrap();
    }

    #[test]
    fn comet_zero_partitions_is_empty_plan() {
        let mut rng = StdRng::seed_from_u64(6);
        let plan = CometPolicy::new(4, 2).plan(0, &mut rng).unwrap();
        assert_eq!(plan.num_sets(), 0);
    }

    #[test]
    fn comet_assignment_differs_across_epochs() {
        // The random grouping and deferred assignment should differ from epoch to
        // epoch (this is the randomness that de-correlates training examples).
        let policy = CometPolicy::auto(16, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let a = policy.plan(16, &mut rng).unwrap();
        let b = policy.plan(16, &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn comet_more_logical_partitions_means_fewer_physical_per_swap_but_more_sets() {
        let mut rng = StdRng::seed_from_u64(8);
        let few = CometPolicy::new(8, 4).plan(16, &mut rng).unwrap();
        let many = CometPolicy::new(8, 8).plan(16, &mut rng).unwrap();
        // More logical partitions -> more partition sets per epoch (Figure 6b's
        // "number of subgraphs" trend).
        assert!(many.num_sets() >= few.num_sets());
    }

    #[test]
    fn comet_name() {
        assert_eq!(CometPolicy::new(4, 2).name(), "comet");
    }
}
